package sim

// Probe exposes the per-cycle microarchitectural state that MicroSampler
// tracks (Table IV of the paper). A Probe is only valid during the
// Tracer.OnCycle call that delivered it.
//
// The slice-returning views (StoreQueue, ROB, LFB, ...) are zero-copy:
// they are backed by scratch buffers owned by the probe and reused every
// call, so a returned slice is only valid until the next call of the
// same method. Tracers that need to retain entries must copy them. The
// Append* variants write straight into a caller-provided buffer and are
// the allocation-free path the trace collector samples through.
type Probe struct {
	c *Core

	// Scratch buffers backing the zero-copy views.
	stq []LSQEntry
	ldq []LSQEntry
	rob []ROBEntry
	lfb []LFBEntryView
	pcs []uint64
}

// Cycle returns the current simulation cycle.
func (p *Probe) Cycle() int64 { return p.c.cycle }

// LSQEntry is one load- or store-queue slot view.
type LSQEntry struct {
	Addr  uint64
	PC    uint64
	Valid bool // address has been computed
}

// StoreQueue returns the store-queue contents in age order, including
// committed stores that have not yet drained to the D-cache. The slice
// is valid until the next StoreQueue call.
func (p *Probe) StoreQueue() []LSQEntry {
	out := p.stq[:0]
	for _, u := range p.c.stq {
		out = append(out, LSQEntry{Addr: u.memAddr, PC: u.pc, Valid: u.addrReady})
	}
	p.stq = out
	return out
}

// LoadQueue returns the load-queue contents in age order. The slice is
// valid until the next LoadQueue call.
func (p *Probe) LoadQueue() []LSQEntry {
	out := p.ldq[:0]
	for _, u := range p.c.ldq {
		out = append(out, LSQEntry{Addr: u.memAddr, PC: u.pc, Valid: u.addrReady})
	}
	p.ldq = out
	return out
}

// AppendStoreAddrs appends the SQ-ADDR feature row: per store-queue slot
// in age order, the computed store address (0 while unresolved).
func (p *Probe) AppendStoreAddrs(dst []uint64) []uint64 {
	for _, u := range p.c.stq {
		if u.addrReady {
			dst = append(dst, u.memAddr)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// AppendStorePCs appends the SQ-PC feature row: the program counter of
// every store-queue slot in age order.
func (p *Probe) AppendStorePCs(dst []uint64) []uint64 {
	for _, u := range p.c.stq {
		dst = append(dst, u.pc)
	}
	return dst
}

// AppendLoadAddrs appends the LQ-ADDR feature row: per load-queue slot
// in age order, the computed load address (0 while unresolved).
func (p *Probe) AppendLoadAddrs(dst []uint64) []uint64 {
	for _, u := range p.c.ldq {
		if u.addrReady {
			dst = append(dst, u.memAddr)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// AppendLoadPCs appends the LQ-PC feature row: the program counter of
// every load-queue slot in age order.
func (p *Probe) AppendLoadPCs(dst []uint64) []uint64 {
	for _, u := range p.c.ldq {
		dst = append(dst, u.pc)
	}
	return dst
}

// ROBEntry is one reorder-buffer slot view.
type ROBEntry struct {
	PC     uint64
	Folded bool // fast-bypassed op sharing its neighbour's slot
}

// ROB returns the reorder-buffer contents in age order. The slice is
// valid until the next ROB call.
func (p *Probe) ROB() []ROBEntry {
	out := p.rob[:0]
	for _, u := range p.c.rob {
		out = append(out, ROBEntry{PC: u.pc, Folded: u.folded})
	}
	p.rob = out
	return out
}

// AppendROBPCs appends the ROB-PC feature row: the program counters of
// the occupied (non-folded) reorder-buffer slots in age order.
func (p *Probe) AppendROBPCs(dst []uint64) []uint64 {
	for _, u := range p.c.rob {
		if !u.folded {
			dst = append(dst, u.pc)
		}
	}
	return dst
}

// ROBOccupancy returns the number of occupied (non-folded) ROB slots.
func (p *Probe) ROBOccupancy() int {
	n := 0
	for _, u := range p.c.rob {
		if !u.folded {
			n++
		}
	}
	return n
}

// LFBEntryView is one load-fill-buffer slot view.
type LFBEntryView struct {
	Addr   uint64 // line base address
	Data   uint64 // first doubleword of the line (valid once filled)
	Filled bool
}

// LFB returns the valid load-fill-buffer entries. The slice is valid
// until the next LFB call.
func (p *Probe) LFB() []LFBEntryView {
	out := p.lfb[:0]
	for _, e := range p.c.dc.lfb {
		if !e.valid {
			continue
		}
		v := LFBEntryView{
			Addr:   e.lineAddr << p.c.dc.cache.lineShift,
			Filled: e.fillAt <= p.c.cycle,
		}
		if v.Filled {
			v.Data = e.data
		}
		out = append(out, v)
	}
	p.lfb = out
	return out
}

// AppendLFBData appends the LFB-Data feature row: per valid fill-buffer
// entry, the first doubleword of the line (0 while the fill is in
// flight).
func (p *Probe) AppendLFBData(dst []uint64) []uint64 {
	for _, e := range p.c.dc.lfb {
		if !e.valid {
			continue
		}
		if e.fillAt <= p.c.cycle {
			dst = append(dst, e.data)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// AppendLFBAddrs appends the LFB-ADDR feature row: the line base
// addresses of the valid fill-buffer entries.
func (p *Probe) AppendLFBAddrs(dst []uint64) []uint64 {
	for _, e := range p.c.dc.lfb {
		if e.valid {
			dst = append(dst, e.lineAddr<<p.c.dc.cache.lineShift)
		}
	}
	return dst
}

func appendBusyPCs(dst []uint64, pool []fuSlot, now int64) []uint64 {
	for _, s := range pool {
		if s.busyUntil > now {
			dst = append(dst, s.pc)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

func (p *Probe) busyPCs(pool []fuSlot) []uint64 {
	out := appendBusyPCs(p.pcs[:0], pool, p.c.cycle)
	p.pcs = out
	return out
}

// ALUBusy returns, per ALU instance, the PC of the op executing this
// cycle (0 when idle). EUU-ALU feature. The slice is valid until the
// next *Busy call.
func (p *Probe) ALUBusy() []uint64 { return p.busyPCs(p.c.alus) }

// MulBusy returns the multiplier occupancy. EUU-MUL feature.
func (p *Probe) MulBusy() []uint64 { return p.busyPCs(p.c.muls) }

// DivBusy returns the divider occupancy. EUU-DIV feature.
func (p *Probe) DivBusy() []uint64 { return p.busyPCs(p.c.divs) }

// AGUBusy returns the address-generation unit occupancy. EUU-ADDRGEN.
func (p *Probe) AGUBusy() []uint64 { return p.busyPCs(p.c.agus) }

// AppendALUBusy appends the EUU-ALU feature row to dst.
func (p *Probe) AppendALUBusy(dst []uint64) []uint64 {
	return appendBusyPCs(dst, p.c.alus, p.c.cycle)
}

// AppendMulBusy appends the EUU-MUL feature row to dst.
func (p *Probe) AppendMulBusy(dst []uint64) []uint64 {
	return appendBusyPCs(dst, p.c.muls, p.c.cycle)
}

// AppendDivBusy appends the EUU-DIV feature row to dst.
func (p *Probe) AppendDivBusy(dst []uint64) []uint64 {
	return appendBusyPCs(dst, p.c.divs, p.c.cycle)
}

// AppendAGUBusy appends the EUU-ADDRGEN feature row to dst.
func (p *Probe) AppendAGUBusy(dst []uint64) []uint64 {
	return appendBusyPCs(dst, p.c.agus, p.c.cycle)
}

// AppendPrefetchAddrs appends the NLP-ADDR feature row: the line
// addresses of outstanding next-line prefetches.
func (p *Probe) AppendPrefetchAddrs(dst []uint64) []uint64 {
	for _, m := range p.c.dc.nlp {
		if m.valid {
			dst = append(dst, m.lineAddr<<p.c.dc.cache.lineShift)
		}
	}
	return dst
}

// PrefetchAddrs returns the line addresses of outstanding next-line
// prefetches. NLP-ADDR feature. The slice is valid until the next
// PrefetchAddrs/ALUBusy-family call (shared scratch).
func (p *Probe) PrefetchAddrs() []uint64 {
	out := p.AppendPrefetchAddrs(p.pcs[:0])
	p.pcs = out
	return out
}

// AppendCacheRequests appends the Cache-ADDR feature row: the demand
// addresses presented to the D-cache this cycle.
func (p *Probe) AppendCacheRequests(dst []uint64) []uint64 {
	for _, r := range p.c.dc.reqThisCycle {
		dst = append(dst, r.addr)
	}
	return dst
}

// CacheRequests returns the demand addresses presented to the D-cache
// this cycle. Cache-ADDR feature. The slice is valid until the next
// PrefetchAddrs/ALUBusy-family call (shared scratch).
func (p *Probe) CacheRequests() []uint64 {
	out := p.AppendCacheRequests(p.pcs[:0])
	p.pcs = out
	return out
}

// AppendTLBPages appends the TLB-ADDR feature row: the valid data-TLB
// page numbers, most recently used first — this exposes the translation
// unit's replacement state, which is RTL state.
func (p *Probe) AppendTLBPages(dst []uint64) []uint64 {
	for _, e := range p.c.dc.tlb.recencyScratch() {
		dst = append(dst, e.page)
	}
	return dst
}

// TLBPages returns the valid data-TLB page numbers, most recently used
// first. TLB-ADDR feature. The slice is valid until the next
// PrefetchAddrs/ALUBusy-family call (shared scratch).
func (p *Probe) TLBPages() []uint64 {
	out := p.AppendTLBPages(p.pcs[:0])
	p.pcs = out
	return out
}

// AppendSPFAddrs appends the SPF-ADDR feature row: the line addresses of
// outstanding stride prefetches. Empty when the stride prefetcher is
// disabled (the trackers never become valid).
func (p *Probe) AppendSPFAddrs(dst []uint64) []uint64 {
	for _, m := range p.c.dc.spf {
		if m.valid {
			dst = append(dst, m.lineAddr<<p.c.dc.cache.lineShift)
		}
	}
	return dst
}

// SPFAddrs returns the line addresses of outstanding stride prefetches.
// SPF-ADDR feature. The slice is valid until the next
// PrefetchAddrs/ALUBusy-family call (shared scratch).
func (p *Probe) SPFAddrs() []uint64 {
	out := p.AppendSPFAddrs(p.pcs[:0])
	p.pcs = out
	return out
}

// AppendSPFPCs appends the slot-aligned training-load PCs of the
// outstanding stride prefetches, attributing each SPF-ADDR value to the
// load stream whose stride pattern triggered it. A prefetched line is
// often one the program never demand-accesses (the stream's runahead),
// so unlike the demand-miss units SPF-ADDR cannot be attributed through
// load/store address maps.
func (p *Probe) AppendSPFPCs(dst []uint64) []uint64 {
	for _, m := range p.c.dc.spf {
		if m.valid {
			dst = append(dst, m.trainPC)
		}
	}
	return dst
}

// AppendBPredMeta appends the TAGE-PRED feature row: the packed TAGE
// prediction metadata (provider table, provider entry index, predicted
// direction) of every conditional branch in flight, in ROB age order —
// the payload a BOOM-style fetch target queue keeps alive from fetch to
// commit. Empty under the gshare predictor.
func (p *Probe) AppendBPredMeta(dst []uint64) []uint64 {
	if p.c.tg == nil {
		return dst
	}
	for _, u := range p.c.rob {
		if !u.folded && u.inst.IsCondBranch() {
			dst = append(dst, u.phtIdx)
		}
	}
	return dst
}

// AppendBPredPCs appends the slot-aligned branch PCs of the in-flight
// prediction metadata, for attributing TAGE-PRED events to the
// predicted branches. Empty under the gshare predictor.
func (p *Probe) AppendBPredPCs(dst []uint64) []uint64 {
	if p.c.tg == nil {
		return dst
	}
	for _, u := range p.c.rob {
		if !u.folded && u.inst.IsCondBranch() {
			dst = append(dst, u.pc)
		}
	}
	return dst
}

// AppendMSHRAddrs appends the MSHR-ADDR feature row: the line addresses
// of outstanding misses — demand MSHRs plus the prefetchers' dedicated
// miss trackers.
func (p *Probe) AppendMSHRAddrs(dst []uint64) []uint64 {
	for _, m := range p.c.dc.mshrs {
		if m.valid {
			dst = append(dst, m.lineAddr<<p.c.dc.cache.lineShift)
		}
	}
	for _, m := range p.c.dc.nlp {
		if m.valid {
			dst = append(dst, m.lineAddr<<p.c.dc.cache.lineShift)
		}
	}
	for _, m := range p.c.dc.spf {
		if m.valid {
			dst = append(dst, m.lineAddr<<p.c.dc.cache.lineShift)
		}
	}
	return dst
}

// MSHRAddrs returns the line addresses of outstanding misses. MSHR-ADDR
// feature. The slice is valid until the next PrefetchAddrs/ALUBusy-family
// call (shared scratch).
func (p *Probe) MSHRAddrs() []uint64 {
	out := p.AppendMSHRAddrs(p.pcs[:0])
	p.pcs = out
	return out
}
