package sim

// Probe exposes the per-cycle microarchitectural state that MicroSampler
// tracks (Table IV of the paper). A Probe is only valid during the
// Tracer.OnCycle call that delivered it.
type Probe struct {
	c *Core
}

// Cycle returns the current simulation cycle.
func (p *Probe) Cycle() int64 { return p.c.cycle }

// LSQEntry is one load- or store-queue slot view.
type LSQEntry struct {
	Addr  uint64
	PC    uint64
	Valid bool // address has been computed
}

// StoreQueue returns the store-queue contents in age order, including
// committed stores that have not yet drained to the D-cache.
func (p *Probe) StoreQueue() []LSQEntry {
	out := make([]LSQEntry, 0, len(p.c.stq))
	for _, u := range p.c.stq {
		out = append(out, LSQEntry{Addr: u.memAddr, PC: u.pc, Valid: u.addrReady})
	}
	return out
}

// LoadQueue returns the load-queue contents in age order.
func (p *Probe) LoadQueue() []LSQEntry {
	out := make([]LSQEntry, 0, len(p.c.ldq))
	for _, u := range p.c.ldq {
		out = append(out, LSQEntry{Addr: u.memAddr, PC: u.pc, Valid: u.addrReady})
	}
	return out
}

// ROBEntry is one reorder-buffer slot view.
type ROBEntry struct {
	PC     uint64
	Folded bool // fast-bypassed op sharing its neighbour's slot
}

// ROB returns the reorder-buffer contents in age order.
func (p *Probe) ROB() []ROBEntry {
	out := make([]ROBEntry, 0, len(p.c.rob))
	for _, u := range p.c.rob {
		out = append(out, ROBEntry{PC: u.pc, Folded: u.folded})
	}
	return out
}

// ROBOccupancy returns the number of occupied (non-folded) ROB slots.
func (p *Probe) ROBOccupancy() int {
	n := 0
	for _, u := range p.c.rob {
		if !u.folded {
			n++
		}
	}
	return n
}

// LFBEntryView is one load-fill-buffer slot view.
type LFBEntryView struct {
	Addr   uint64 // line base address
	Data   uint64 // first doubleword of the line (valid once filled)
	Filled bool
}

// LFB returns the valid load-fill-buffer entries.
func (p *Probe) LFB() []LFBEntryView {
	out := make([]LFBEntryView, 0, 4)
	for _, e := range p.c.dc.lfb {
		if !e.valid {
			continue
		}
		v := LFBEntryView{
			Addr:   e.lineAddr << p.c.dc.cache.lineShift,
			Filled: e.fillAt <= p.c.cycle,
		}
		if v.Filled {
			v.Data = e.data
		}
		out = append(out, v)
	}
	return out
}

func busyPCs(pool []fuSlot, now int64) []uint64 {
	out := make([]uint64, len(pool))
	for i, s := range pool {
		if s.busyUntil > now {
			out[i] = s.pc
		}
	}
	return out
}

// ALUBusy returns, per ALU instance, the PC of the op executing this
// cycle (0 when idle). EUU-ALU feature.
func (p *Probe) ALUBusy() []uint64 { return busyPCs(p.c.alus, p.c.cycle) }

// MulBusy returns the multiplier occupancy. EUU-MUL feature.
func (p *Probe) MulBusy() []uint64 { return busyPCs(p.c.muls, p.c.cycle) }

// DivBusy returns the divider occupancy. EUU-DIV feature.
func (p *Probe) DivBusy() []uint64 { return busyPCs(p.c.divs, p.c.cycle) }

// AGUBusy returns the address-generation unit occupancy. EUU-ADDRGEN.
func (p *Probe) AGUBusy() []uint64 { return busyPCs(p.c.agus, p.c.cycle) }

// PrefetchAddrs returns the line addresses of outstanding next-line
// prefetches. NLP-ADDR feature.
func (p *Probe) PrefetchAddrs() []uint64 {
	out := make([]uint64, 0, 2)
	for _, m := range p.c.dc.nlp {
		if m.valid {
			out = append(out, m.lineAddr<<p.c.dc.cache.lineShift)
		}
	}
	return out
}

// CacheRequests returns the demand addresses presented to the D-cache
// this cycle. Cache-ADDR feature.
func (p *Probe) CacheRequests() []uint64 {
	out := make([]uint64, 0, len(p.c.dc.reqThisCycle))
	for _, r := range p.c.dc.reqThisCycle {
		out = append(out, r.addr)
	}
	return out
}

// TLBPages returns the valid data-TLB page numbers, most recently used
// first — this exposes the translation unit's replacement state, which
// is RTL state. TLB-ADDR feature.
func (p *Probe) TLBPages() []uint64 {
	ents := p.c.dc.tlb.recencyOrdered()
	out := make([]uint64, 0, len(ents))
	for _, e := range ents {
		out = append(out, e.page)
	}
	return out
}

// MSHRAddrs returns the line addresses of outstanding misses — demand
// MSHRs plus the prefetcher's dedicated miss trackers. MSHR-ADDR feature.
func (p *Probe) MSHRAddrs() []uint64 {
	out := make([]uint64, 0, 2)
	for _, m := range p.c.dc.mshrs {
		if m.valid {
			out = append(out, m.lineAddr<<p.c.dc.cache.lineShift)
		}
	}
	for _, m := range p.c.dc.nlp {
		if m.valid {
			out = append(out, m.lineAddr<<p.c.dc.cache.lineShift)
		}
	}
	return out
}
