package sim

import (
	"errors"
	"strings"
	"testing"

	"microsampler/internal/asm"
	"microsampler/internal/isa"
)

// runSrc assembles and runs a program to completion on cfg, returning
// the machine and result for inspection.
func runSrc(t *testing.T, cfg Config, src string) (*Machine, Result) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	if err := m.LoadProgram(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := m.Run(5_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, res
}

const exitStub = `
exit:
	li a7, 93
	ecall
`

func TestArithmeticProgram(t *testing.T) {
	for _, cfg := range []Config{MegaBoom(), SmallBoom()} {
		t.Run(cfg.Name, func(t *testing.T) {
			_, res := runSrc(t, cfg, `
			_start:
				li   t0, 21
				li   t1, 2
				mul  t2, t0, t1      # 42
				li   t3, 5
				divu t4, t2, t3      # 8
				remu t5, t2, t3      # 2
				add  a0, t4, t5      # 10
				slli a0, a0, 4       # 160
				addi a0, a0, -60     # 100
				j exit
			`+exitStub)
			if res.ExitCode != 100 {
				t.Errorf("exit code = %d want 100", res.ExitCode)
			}
		})
	}
}

func TestFibonacciLoop(t *testing.T) {
	_, res := runSrc(t, MegaBoom(), `
	_start:
		li   a0, 0          # fib(0)
		li   a1, 1          # fib(1)
		li   t0, 20         # n iterations
	loop:
		add  t1, a0, a1
		mv   a0, a1
		mv   a1, t1
		addi t0, t0, -1
		bnez t0, loop
		j exit
	`+exitStub)
	if res.ExitCode != 6765 { // fib(20)
		t.Errorf("exit = %d want 6765", res.ExitCode)
	}
	if res.Branches == 0 {
		t.Error("no branches recorded")
	}
}

func TestMemoryAndForwarding(t *testing.T) {
	_, res := runSrc(t, MegaBoom(), `
		.data
	buf:
		.dword 0
		.dword 0x1122334455667788
		.text
	_start:
		la   t0, buf
		li   t1, 0xDEADBEEF
		sd   t1, 0(t0)        # store then immediately load back
		ld   t2, 0(t0)
		lw   t3, 8(t0)        # 0x55667788
		lbu  t4, 15(t0)       # 0x11
		lb   t5, 12(t0)       # 0x44
		add  a0, t2, zero
		sub  a0, a0, t1       # 0 if forwardd correctly
		add  a0, a0, t3
		add  a0, a0, t4
		add  a0, a0, t5
		j exit
	`+exitStub)
	want := uint64(0x55667788 + 0x11 + 0x44)
	if res.ExitCode != want {
		t.Errorf("exit = %#x want %#x", res.ExitCode, want)
	}
}

func TestByteHalfWordAccess(t *testing.T) {
	_, res := runSrc(t, SmallBoom(), `
		.data
	buf: .zero 16
		.text
	_start:
		la  t0, buf
		li  t1, -2
		sb  t1, 0(t0)
		lb  t2, 0(t0)       # -2 sign extended
		lbu t3, 0(t0)       # 254
		li  t4, -30000
		sh  t4, 2(t0)
		lh  t5, 2(t0)       # -30000
		lhu t6, 2(t0)       # 35536
		add a0, t2, t3      # 252
		add a0, a0, t5
		add a0, a0, t6      # 252 + 5536
		j exit
	`+exitStub)
	want := uint64(252 + (-30000 + 35536))
	if res.ExitCode != want {
		t.Errorf("exit = %d want %d", res.ExitCode, want)
	}
}

func TestFunctionCallAndReturn(t *testing.T) {
	_, res := runSrc(t, MegaBoom(), `
	_start:
		li   a0, 7
		call square
		call square          # (7^2)^2 = 2401
		j exit
	square:
		mul  a0, a0, a0
		ret
	`+exitStub)
	if res.ExitCode != 2401 {
		t.Errorf("exit = %d want 2401", res.ExitCode)
	}
}

func TestRecursion(t *testing.T) {
	_, res := runSrc(t, MegaBoom(), `
	_start:
		li a0, 10
		call fact
		j exit
	fact:                    # recursive factorial
		addi sp, sp, -16
		sd   ra, 8(sp)
		sd   a0, 0(sp)
		li   t0, 2
		bltu a0, t0, base
		addi a0, a0, -1
		call fact
		ld   t1, 0(sp)
		mul  a0, a0, t1
	base:
		ld   ra, 8(sp)
		addi sp, sp, 16
		ret
	`+exitStub)
	if res.ExitCode != 3628800 {
		t.Errorf("exit = %d want 3628800", res.ExitCode)
	}
}

func TestBranchMispredictionRecovery(t *testing.T) {
	// Data-dependent alternating branch: the predictor will mispredict;
	// architectural results must still be exact.
	_, res := runSrc(t, MegaBoom(), `
	_start:
		li  t0, 100        # loop counter
		li  t1, 0          # accumulator
		li  t2, 0          # parity
	loop:
		andi t3, t0, 1
		beqz t3, even
		addi t1, t1, 3
		j    next
	even:
		addi t1, t1, 5
	next:
		addi t0, t0, -1
		bnez t0, loop
		mv   a0, t1        # 50*3 + 50*5 = 400
		j exit
	`+exitStub)
	if res.ExitCode != 400 {
		t.Errorf("exit = %d want 400", res.ExitCode)
	}
	if res.Mispredicts == 0 {
		t.Error("expected some mispredictions on alternating branch")
	}
}

func TestWriteSyscall(t *testing.T) {
	_, res := runSrc(t, SmallBoom(), `
		.data
	msg: .ascii "hello"
		.text
	_start:
		li a7, 64
		li a0, 1
		la a1, msg
		li a2, 5
		ecall
		li a0, 0
		j exit
	`+exitStub)
	if string(res.Output) != "hello" {
		t.Errorf("output = %q want %q", res.Output, "hello")
	}
}

func TestIllegalInstructionTrap(t *testing.T) {
	p, err := asm.Assemble(`
		.data
	junk: .word 0xFFFFFFFF
		.text
	_start:
		la  t0, junk
		jr  t0              # jump into data: illegal instruction
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(MegaBoom())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(100000)
	if err == nil || !strings.Contains(err.Error(), "illegal instruction") {
		t.Errorf("want illegal instruction error, got %v", err)
	}
}

func TestMaxCycles(t *testing.T) {
	p, err := asm.Assemble("_start:\n j _start\n")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(SmallBoom())
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(1000)
	if !errors.Is(err, ErrMaxCycles) {
		t.Errorf("want ErrMaxCycles, got %v", err)
	}
}

func TestCacheMissTiming(t *testing.T) {
	// Touching many distinct lines must be slower than re-touching one.
	src := func(stride int) string {
		return `
		.equ STRIDE, ` + itoa(stride) + `
		.data
	buf: .zero 8192
		.text
	_start:
		la  t0, buf
		li  t1, 64          # accesses
		li  t3, 0
	loop:
		ld  t2, 0(t0)
		addi t0, t0, STRIDE
		addi t1, t1, -1
		bnez t1, loop
		li  a0, 0
		j exit
	` + exitStub
	}
	cfg := MegaBoom()
	cfg.NextLinePrefetcher = false
	_, hot := runSrc(t, cfg, src(0))
	_, cold := runSrc(t, cfg, src(128)) // every other line: misses
	if cold.Cycles <= hot.Cycles {
		t.Errorf("cold run (%d cycles) not slower than hot run (%d cycles)",
			cold.Cycles, hot.Cycles)
	}
}

func TestCboFlushCreatesMisses(t *testing.T) {
	// Repeatedly loading one line is fast; flushing it each iteration
	// forces a miss per iteration.
	src := func(flush string) string {
		return `
		.data
	buf: .zero 64
		.text
	_start:
		la  t0, buf
		li  t1, 50
	loop:
		ld  t2, 0(t0)
		` + flush + `
		addi t1, t1, -1
		bnez t1, loop
		li a0, 0
		j exit
	` + exitStub
	}
	_, fast := runSrc(t, MegaBoom(), src(""))
	_, slow := runSrc(t, MegaBoom(), src("cbo.flush (t0)"))
	if slow.Cycles < fast.Cycles+200 {
		t.Errorf("flush run (%d) should be much slower than cached run (%d)",
			slow.Cycles, fast.Cycles)
	}
}

func TestNextLinePrefetcherHelpsStreaming(t *testing.T) {
	src := `
		.data
	buf: .zero 16384
		.text
	_start:
		la  t0, buf
		li  t1, 128
	loop:
		ld  t2, 0(t0)
		addi t0, t0, 64     # next line each time: streaming
		addi t1, t1, -1
		bnez t1, loop
		li a0, 0
		j exit
	` + exitStub
	with := MegaBoom()
	without := MegaBoom()
	without.NextLinePrefetcher = false
	_, rWith := runSrc(t, with, src)
	_, rWithout := runSrc(t, without, src)
	if rWith.Cycles >= rWithout.Cycles {
		t.Errorf("prefetcher run (%d) not faster than baseline (%d)",
			rWith.Cycles, rWithout.Cycles)
	}
}

func TestFastBypassCorrectness(t *testing.T) {
	// A dependence chain through ANDs with a zero operand: the bypass
	// removes the AND latency from the chain, so the run must be faster
	// and architecturally identical.
	src := `
	_start:
		li  t0, 0
		li  t1, 0x5A5A
		li  t2, 200
		li  s2, 0x1234
	loop:
		and s2, s2, t0      # zero operand: bypass fires
		xor s2, s2, t1      # chain continues through s2
		and s2, s2, t0
		xor s2, s2, t1
		and s2, s2, t0
		xor s2, s2, t1
		and s2, s2, t0
		xor s2, s2, t1
		addi t2, t2, -1
		bnez t2, loop
		mv  a0, s2          # always t1
		j exit
	` + exitStub
	base := MegaBoom()
	fb := MegaBoom()
	fb.FastBypass = true
	_, rBase := runSrc(t, base, src)
	_, rFB := runSrc(t, fb, src)
	if rBase.ExitCode != rFB.ExitCode {
		t.Errorf("fast bypass changed result: %d vs %d", rBase.ExitCode, rFB.ExitCode)
	}
	if rBase.ExitCode != 0x5A5A {
		t.Errorf("exit = %#x want 0x5A5A", rBase.ExitCode)
	}
	if rFB.Cycles >= rBase.Cycles {
		t.Errorf("fast bypass (%d cycles) not faster than baseline (%d)",
			rFB.Cycles, rBase.Cycles)
	}
}

func TestMegaFasterThanSmall(t *testing.T) {
	src := `
	_start:
		li  t0, 500
		li  t1, 1
		li  t2, 3
	loop:
		mul t1, t1, t2
		addi t1, t1, 7
		and t1, t1, t2
		or  t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		li a0, 0
		j exit
	` + exitStub
	_, mega := runSrc(t, MegaBoom(), src)
	_, small := runSrc(t, SmallBoom(), src)
	if mega.Cycles >= small.Cycles {
		t.Errorf("MegaBoom (%d cycles) not faster than SmallBoom (%d)",
			mega.Cycles, small.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
	_start:
		li  t0, 300
		li  a0, 1
	loop:
		mul a0, a0, t0
		remu a0, a0, t0
		addi a0, a0, 13
		andi t1, t0, 3
		beqz t1, skip
		xori a0, a0, 0x55
	skip:
		addi t0, t0, -1
		bnez t0, loop
		j exit
	` + exitStub
	_, r1 := runSrc(t, MegaBoom(), src)
	_, r2 := runSrc(t, MegaBoom(), src)
	if r1.Cycles != r2.Cycles || r1.ExitCode != r2.ExitCode ||
		r1.Mispredicts != r2.Mispredicts {
		t.Errorf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func TestDataDepDivideTiming(t *testing.T) {
	src := func(dividend string) string {
		return `
	_start:
		li  t0, 100
		li  t1, ` + dividend + `
		li  t2, 3
	loop:
		divu t3, t1, t2
		addi t0, t0, -1
		bnez t0, loop
		li a0, 0
		j exit
	` + exitStub
	}
	cfg := MegaBoom()
	cfg.DataDepDivide = true
	_, smallDiv := runSrc(t, cfg, src("7"))
	_, bigDiv := runSrc(t, cfg, src("0x7FFFFFFFFFFFFFFF"))
	if bigDiv.Cycles <= smallDiv.Cycles {
		t.Errorf("data-dependent divide: big dividend (%d) not slower than small (%d)",
			bigDiv.Cycles, smallDiv.Cycles)
	}
	// With the default fixed-latency divider the two must match closely
	// (the li sequence differs by a couple of instructions).
	fixed := MegaBoom()
	_, f1 := runSrc(t, fixed, src("7"))
	_, f2 := runSrc(t, fixed, src("0x7FFFFFFFFFFFFFFF"))
	diff := f2.Cycles - f1.Cycles
	if diff < 0 {
		diff = -diff
	}
	if diff > 20 {
		t.Errorf("fixed divider run cycles differ too much: %d vs %d", f1.Cycles, f2.Cycles)
	}
}

func TestMarkTracerEvents(t *testing.T) {
	var marks []isa.MarkKind
	var classes []uint64
	tr := &testTracer{
		onMark: func(_ int64, k isa.MarkKind, class uint64) {
			marks = append(marks, k)
			classes = append(classes, class)
		},
	}
	p, err := asm.Assemble(`
	_start:
		roi.begin
		li  t0, 3
	loop:
		andi t1, t0, 1
		iter.begin t1
		add  t2, t0, t0
		iter.end
		addi t0, t0, -1
		bnez t0, loop
		roi.end
		li a0, 0
		li a7, 93
		ecall
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(MegaBoom())
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	m.SetTracer(tr)
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	wantKinds := []isa.MarkKind{
		isa.MarkROIBegin,
		isa.MarkIterBegin, isa.MarkIterEnd,
		isa.MarkIterBegin, isa.MarkIterEnd,
		isa.MarkIterBegin, isa.MarkIterEnd,
		isa.MarkROIEnd,
	}
	if len(marks) != len(wantKinds) {
		t.Fatalf("marks = %v want %v", marks, wantKinds)
	}
	for i := range wantKinds {
		if marks[i] != wantKinds[i] {
			t.Errorf("mark %d = %v want %v", i, marks[i], wantKinds[i])
		}
	}
	// Classes for t0 = 3,2,1 -> parity 1,0,1.
	gotClasses := []uint64{classes[1], classes[3], classes[5]}
	if gotClasses[0] != 1 || gotClasses[1] != 0 || gotClasses[2] != 1 {
		t.Errorf("iteration classes = %v want [1 0 1]", gotClasses)
	}
}

type testTracer struct {
	onCycle func(*Probe)
	onMark  func(int64, isa.MarkKind, uint64)
}

func (t *testTracer) OnCycle(p *Probe) {
	if t.onCycle != nil {
		t.onCycle(p)
	}
}

func (t *testTracer) OnMark(cycle int64, k isa.MarkKind, class uint64) {
	if t.onMark != nil {
		t.onMark(cycle, k, class)
	}
}

func TestProbeViews(t *testing.T) {
	seenStore := false
	seenALU := false
	seenROB := false
	tr := &testTracer{onCycle: func(p *Probe) {
		for _, e := range p.StoreQueue() {
			if e.Valid {
				seenStore = true
			}
		}
		for _, pc := range p.ALUBusy() {
			if pc != 0 {
				seenALU = true
			}
		}
		if p.ROBOccupancy() > 0 && len(p.ROB()) >= p.ROBOccupancy() {
			seenROB = true
		}
	}}
	p, err := asm.Assemble(`
		.data
	buf: .zero 64
		.text
	_start:
		la t0, buf
		li t1, 20
	loop:
		sd t1, 0(t0)
		ld t2, 0(t0)
		add t3, t2, t1
		addi t1, t1, -1
		bnez t1, loop
		li a0, 0
		li a7, 93
		ecall
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(MegaBoom())
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	m.SetTracer(tr)
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if !seenStore || !seenALU || !seenROB {
		t.Errorf("probe views missing activity: store=%v alu=%v rob=%v",
			seenStore, seenALU, seenROB)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := MegaBoom()
	bad.FetchWidth = 0
	if _, err := New(bad); err == nil {
		t.Error("expected config error for zero FetchWidth")
	}
	bad = MegaBoom()
	bad.LineBytes = 48
	if _, err := New(bad); err == nil {
		t.Error("expected config error for non-power-of-two LineBytes")
	}
}

func TestStateBits(t *testing.T) {
	mega, small := MegaBoom().StateBits(), SmallBoom().StateBits()
	if mega <= small {
		t.Errorf("MegaBoom state bits (%d) should exceed SmallBoom (%d)", mega, small)
	}
	// The paper reports ~700K state bits for the largest BOOM; our
	// estimate should be the same order of magnitude.
	if mega < 300_000 || mega > 3_000_000 {
		t.Errorf("MegaBoom state bits %d out of expected range", mega)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
