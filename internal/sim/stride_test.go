package sim

import "testing"

// ---------------------------------------------------------------------
// Stride prefetcher

func strideCfg() Config {
	cfg := MegaBoom()
	cfg.NextLinePrefetcher = false
	cfg.StridePrefetcher = true
	return cfg
}

// TestStridePrefetcherDetectsStream drives a constant-stride stream from
// one PC and checks the prefetcher locks on and runs one stride ahead,
// forward or backward.
func TestStridePrefetcherDetectsStream(t *testing.T) {
	cases := []struct {
		name   string
		start  uint64
		stride int64
	}{
		{"forward-line", 0x10000, 64},
		{"backward-line", 0x20000, -64},
		{"forward-2lines", 0x30000, 128},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newDCache(strideCfg(), NewMemory())
			pc := uint64(0x44)
			now := int64(0)
			addr := tc.start
			for i := 0; i < 5; i++ {
				d.tick(now)
				if _, ok := d.access(now, addr, pc); !ok {
					t.Fatalf("access %d rejected", i)
				}
				now += 50
				if i < 4 {
					addr = uint64(int64(addr) + tc.stride)
				}
			}
			if d.spfPrefetches == 0 {
				t.Fatal("no stride prefetch issued")
			}
			want := d.lineOf(uint64(int64(addr) + tc.stride))
			found := false
			for _, m := range d.spf {
				if m.lineAddr == want {
					found = true
				}
			}
			if !found {
				// The tracker may already have drained; the line must
				// then be resident and tagged as an SPF fill.
				if !d.cache.present(want) {
					t.Fatalf("no prefetch of line %#x (one stride ahead)", want)
				}
			}
		})
	}
}

func TestStridePrefetchUsefulCounters(t *testing.T) {
	d := newDCache(strideCfg(), NewMemory())
	pc := uint64(0x80)
	now := int64(0)
	// Train to confidence 2: the 4th access prefetches addr+64.
	for _, addr := range []uint64{0x40000, 0x40040, 0x40080, 0x400C0} {
		d.tick(now)
		if _, ok := d.access(now, addr, pc); !ok {
			t.Fatal("access rejected")
		}
		now += 50
	}
	if d.spfPrefetches != 1 {
		t.Fatalf("spfPrefetches = %d want 1", d.spfPrefetches)
	}
	// After the fill retires, demanding the prefetched line counts it
	// useful exactly once.
	d.tick(now)
	if _, ok := d.access(now, 0x40100, pc); !ok {
		t.Fatal("demand of prefetched line rejected")
	}
	if d.spfUseful != 1 {
		t.Errorf("spfUseful = %d want 1", d.spfUseful)
	}
	if d.spfUseless != 0 {
		t.Errorf("spfUseless = %d want 0", d.spfUseless)
	}
}

func TestStridePrefetchInFlightPromotion(t *testing.T) {
	d := newDCache(strideCfg(), NewMemory())
	pc := uint64(0x80)
	now := int64(0)
	for _, addr := range []uint64{0x50000, 0x50040, 0x50080, 0x500C0} {
		d.tick(now)
		if _, ok := d.access(now, addr, pc); !ok {
			t.Fatal("access rejected")
		}
		now++ // keep the final prefetch in flight
	}
	// Demand the prefetch target while its fill is still outstanding.
	done, ok := d.access(now, 0x50100, pc)
	if !ok {
		t.Fatal("in-flight demand rejected")
	}
	if d.spfUseful != 1 {
		t.Errorf("spfUseful = %d want 1 (promoted in flight)", d.spfUseful)
	}
	if done <= now {
		t.Error("promoted access must still wait for the fill")
	}
}

func TestStridePrefetchUselessEviction(t *testing.T) {
	cfg := strideCfg()
	cfg.DCacheSets = 1 // every line maps to one set: easy to evict
	d := newDCache(cfg, NewMemory())
	pc := uint64(0x80)
	now := int64(0)
	for _, addr := range []uint64{0x60000, 0x60040, 0x60080, 0x600C0} {
		d.tick(now)
		if _, ok := d.access(now, addr, pc); !ok {
			t.Fatal("access rejected")
		}
		now += 50
	}
	if d.spfPrefetches != 1 {
		t.Fatalf("spfPrefetches = %d want 1", d.spfPrefetches)
	}
	d.tick(now) // retire the prefetch fill
	// Flood the set from unrelated PCs (each trains a cold stride slot,
	// never gaining confidence) until the prefetched line is evicted.
	for i := 0; i < 2*cfg.DCacheWays; i++ {
		d.tick(now)
		addr := 0x900000 + uint64(i)*64
		if _, ok := d.access(now, addr, 0x2000+uint64(i)*4); !ok {
			t.Fatalf("flood access %d rejected", i)
		}
		now += 50
	}
	d.tick(now)
	if d.spfUseless != 1 {
		t.Errorf("spfUseless = %d want 1 (prefetched line evicted unused)", d.spfUseless)
	}
	if d.spfUseful != 0 {
		t.Errorf("spfUseful = %d want 0", d.spfUseful)
	}
}

// TestStrideDisabledStaysCold ensures the model is fully gated: without
// the config toggle no table trains and no tracker goes valid, so the
// SPF-ADDR unit samples empty rows.
func TestStrideDisabledStaysCold(t *testing.T) {
	cfg := MegaBoom() // stride off
	d := newDCache(cfg, NewMemory())
	pc := uint64(0x80)
	now := int64(0)
	for _, addr := range []uint64{0x70000, 0x70040, 0x70080, 0x700C0, 0x70100} {
		d.tick(now)
		d.access(now, addr, pc)
		now += 50
	}
	if d.spfPrefetches != 0 || d.spfUseful != 0 || d.spfUseless != 0 {
		t.Error("disabled stride prefetcher must keep zero counters")
	}
	for _, e := range d.stride {
		if e.valid {
			t.Fatal("disabled stride prefetcher must not train")
		}
	}
	for _, m := range d.spf {
		if m.valid {
			t.Fatal("disabled stride prefetcher must not issue")
		}
	}
}

func TestStrideConfidenceResetsOnNewPattern(t *testing.T) {
	d := newDCache(strideCfg(), NewMemory())
	pc := uint64(0x80)
	now := int64(0)
	run := func(addrs []uint64) {
		for _, a := range addrs {
			d.tick(now)
			d.access(now, a, pc)
			now += 50
		}
	}
	run([]uint64{0x80000, 0x80040, 0x80080, 0x800C0}) // conf reaches 2, one prefetch
	issued := d.spfPrefetches
	if issued != 1 {
		t.Fatalf("spfPrefetches = %d want 1", issued)
	}
	// A stride change decays confidence below the prefetch threshold:
	// the immediately following irregular accesses must not prefetch.
	run([]uint64{0x90000, 0x90800, 0x91300})
	if d.spfPrefetches != issued {
		t.Errorf("irregular stream issued %d extra prefetches", d.spfPrefetches-issued)
	}
}
