package sim

// branchPredictor abstracts the direction predictor so the core can run
// either the default gshare or the TAGE model. predict returns the
// predicted direction plus an opaque cookie that rides in the uop:
// gshare's PHT index, or TAGE's packed prediction metadata — which the
// TAGE-PRED trace unit samples for every conditional branch in flight.
// resolveBranch hands the cookie back to train together with the
// branch's PC and checkpointed history, from which TAGE recomputes its
// table indices.
type branchPredictor interface {
	predict(pc uint64) (taken bool, idx uint64)
	shiftHistory(taken bool) uint64
	restoreHistory(checkpoint uint64, actual bool)
	train(idx, pc, hist uint64, taken bool)
	btbLookup(pc uint64) (uint64, bool)
	btbUpdate(pc, target uint64)
	rasPush(retAddr uint64)
	rasPop() (uint64, bool)
}

// TAGE geometry. Four tagged tables with geometrically increasing
// history lengths sit beside a bimodal base table; the longest history
// (44 bits) fits the uint64 checkpoint the core already carries per
// branch. Each tagged table holds BranchPredEnts/tageTableDivisor
// entries.
const (
	tageNumTables    = 4
	tageTableDivisor = 4
	tageTagBits      = 9
	tageCtrMax       = 3 // signed 3-bit counter range [-4, 3]
	tageCtrMin       = -4
	tageUMax         = 3 // 2-bit useful counter
)

// tageHistLens are the per-table global history lengths, shortest first.
var tageHistLens = [tageNumTables]uint{4, 10, 21, 44}

// tageEntry is one tagged-table slot.
type tageEntry struct {
	ctr int8 // prediction counter, taken when >= 0
	tag uint16
	u   uint8 // useful counter, guards the entry against reallocation
}

type tageTable struct {
	entries  []tageEntry
	mask     uint64
	histLen  uint
	histMask uint64
}

// tage is a TAGE (TAgged GEometric history length) branch predictor: a
// bimodal base predictor plus tagged tables indexed by hashes of the PC
// and geometrically longer slices of global history. The prediction
// provider is the longest-history table whose tag matches; entries are
// allocated into longer tables on mispredictions. Unlike gshare's
// 12-bit window, the long tables correlate a branch with outcomes tens
// of branches in the past — state the TAGE-PRED trace unit exposes via
// the packed prediction metadata each in-flight branch carries.
type tage struct {
	base     []uint8 // 2-bit bimodal counters
	baseMask uint64

	tables [tageNumTables]tageTable

	history  uint64
	histMask uint64

	btbTags    []uint64
	btbTargets []uint64
	btbMask    uint64

	ras    []uint64
	rasTop int
}

func newTAGE(phtEntries, btbEntries int) *tage {
	t := &tage{
		base:       make([]uint8, phtEntries),
		baseMask:   uint64(phtEntries - 1),
		histMask:   1<<tageHistLens[tageNumTables-1] - 1,
		btbTags:    make([]uint64, btbEntries),
		btbTargets: make([]uint64, btbEntries),
		btbMask:    uint64(btbEntries - 1),
		ras:        make([]uint64, rasEntries),
	}
	for i := range t.base {
		t.base[i] = 1 // weakly not-taken, matching gshare's reset state
	}
	n := phtEntries / tageTableDivisor
	for i := range t.tables {
		t.tables[i] = tageTable{
			entries:  make([]tageEntry, n),
			mask:     uint64(n - 1),
			histLen:  tageHistLens[i],
			histMask: 1<<tageHistLens[i] - 1,
		}
	}
	return t
}

// fold XOR-folds h down to the given bit width.
func fold(h uint64, bits uint) uint64 {
	mask := uint64(1)<<bits - 1
	f := uint64(0)
	for h != 0 {
		f ^= h & mask
		h >>= bits
	}
	return f
}

// idxBits returns the index width of a tagged table.
func (tt *tageTable) idxBits() uint {
	bits := uint(0)
	for m := tt.mask; m != 0; m >>= 1 {
		bits++
	}
	return bits
}

// index hashes (pc, history slice) into the table.
func (tt *tageTable) index(pc, hist uint64) uint64 {
	return ((pc >> 2) ^ fold(hist&tt.histMask, tt.idxBits())) & tt.mask
}

// tagOf hashes (pc, history slice) into a tag, using a fold width
// decorrelated from the index fold.
func (tt *tageTable) tagOf(pc, hist uint64) uint16 {
	h := fold(hist&tt.histMask, tageTagBits-1)
	return uint16(((pc >> 2) ^ (pc >> (2 + tageTagBits)) ^ (h << 1)) & (1<<tageTagBits - 1))
}

// lookup finds the provider (longest-history tag match) and the
// alternate prediction for pc under hist. provider is -1 when the base
// table provides.
func (t *tage) lookup(pc, hist uint64) (provider int, providerIdx uint64, taken, altTaken bool) {
	provider = -1
	baseTaken := t.base[(pc>>2)&t.baseMask] >= 2
	taken, altTaken = baseTaken, baseTaken
	for i := tageNumTables - 1; i >= 0; i-- {
		tt := &t.tables[i]
		idx := tt.index(pc, hist)
		if tt.entries[idx].tag != tt.tagOf(pc, hist) {
			continue
		}
		if provider < 0 {
			provider = i
			providerIdx = idx
			taken = tt.entries[idx].ctr >= 0
		} else {
			// First match below the provider: nothing more to learn.
			break
		}
		// Find the alternate in the shorter tables (or fall back to base).
		altTaken = baseTaken
		for j := i - 1; j >= 0; j-- {
			at := &t.tables[j]
			aidx := at.index(pc, hist)
			if at.entries[aidx].tag == at.tagOf(pc, hist) {
				altTaken = at.entries[aidx].ctr >= 0
				break
			}
		}
		break
	}
	return provider, providerIdx, taken, altTaken
}

// packMeta packs one prediction's provider metadata: a
// guaranteed-nonzero marker bit, the provider table (0 = base), the
// provider entry index, and the predicted direction. The entry index is
// a hash of the PC and the provider's history slice, so for a branch at
// a fixed PC it is the secret-history window made visible. Like BOOM's
// fetch-target-queue payload, the packed word travels with the branch
// from fetch to commit; the TAGE-PRED trace unit samples it for every
// conditional branch still in the ROB.
func packMeta(provider int, idx uint64, taken bool) uint64 {
	v := uint64(1)<<48 | uint64(provider+1)<<32 | idx<<1
	if taken {
		v |= 1
	}
	return v
}

// predict returns the predicted direction plus the packed prediction
// metadata as the cookie. train ignores the cookie — TAGE recomputes
// everything from pc and the checkpointed history — but the uop keeps
// it in flight for the TAGE-PRED unit to observe.
func (t *tage) predict(pc uint64) (bool, uint64) {
	provider, idx, taken, _ := t.lookup(pc, t.history)
	if provider < 0 {
		idx = (pc >> 2) & t.baseMask
	}
	return taken, packMeta(provider, idx, taken)
}

func (t *tage) shiftHistory(taken bool) uint64 {
	prev := t.history
	t.history = (t.history << 1) & t.histMask
	if taken {
		t.history |= 1
	}
	return prev
}

func (t *tage) restoreHistory(checkpoint uint64, actual bool) {
	t.history = checkpoint
	t.shiftHistory(actual)
}

func satUpdate(ctr int8, taken bool) int8 {
	if taken {
		if ctr < tageCtrMax {
			ctr++
		}
	} else if ctr > tageCtrMin {
		ctr--
	}
	return ctr
}

// train updates the predictor for a resolved branch. TAGE recomputes the
// provider from (pc, hist) — the fetch-time checkpoint — rather than
// carrying per-prediction metadata through the pipeline: the counter
// update lands on the provider, the useful bit records whether the
// provider beat its alternate, and a misprediction allocates a fresh
// entry in a longer-history table whose victim slot is not useful.
func (t *tage) train(_ /* cookie */, pc, hist uint64, taken bool) {
	provider, providerIdx, predTaken, altTaken := t.lookup(pc, hist)

	if provider < 0 {
		i := (pc >> 2) & t.baseMask
		c := t.base[i]
		if taken {
			if c < 3 {
				c++
			}
		} else if c > 0 {
			c--
		}
		t.base[i] = c
	} else {
		e := &t.tables[provider].entries[providerIdx]
		e.ctr = satUpdate(e.ctr, taken)
		if predTaken != altTaken {
			if predTaken == taken {
				if e.u < tageUMax {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
	}

	if predTaken == taken || provider == tageNumTables-1 {
		return
	}
	// Misprediction with room above the provider: allocate in the
	// shortest longer-history table holding a non-useful victim; when
	// every candidate is useful, age them all instead.
	allocated := false
	for i := provider + 1; i < tageNumTables; i++ {
		tt := &t.tables[i]
		idx := tt.index(pc, hist)
		if tt.entries[idx].u == 0 {
			ctr := int8(0) // weakly taken
			if !taken {
				ctr = -1 // weakly not-taken
			}
			tt.entries[idx] = tageEntry{ctr: ctr, tag: tt.tagOf(pc, hist)}
			allocated = true
			break
		}
	}
	if !allocated {
		for i := provider + 1; i < tageNumTables; i++ {
			tt := &t.tables[i]
			idx := tt.index(pc, hist)
			if tt.entries[idx].u > 0 {
				tt.entries[idx].u--
			}
		}
	}
}

func (t *tage) btbLookup(pc uint64) (uint64, bool) {
	i := (pc >> 2) & t.btbMask
	if t.btbTags[i] == pc {
		return t.btbTargets[i], true
	}
	return 0, false
}

func (t *tage) btbUpdate(pc, target uint64) {
	i := (pc >> 2) & t.btbMask
	t.btbTags[i] = pc
	t.btbTargets[i] = target
}

func (t *tage) rasPush(retAddr uint64) {
	t.rasTop = (t.rasTop + 1) % rasEntries
	t.ras[t.rasTop] = retAddr
}

func (t *tage) rasPop() (uint64, bool) {
	v := t.ras[t.rasTop]
	if v == 0 {
		return 0, false
	}
	t.ras[t.rasTop] = 0
	t.rasTop = (t.rasTop - 1 + rasEntries) % rasEntries
	return v, true
}
