package sim

import "testing"

// ---------------------------------------------------------------------
// TAGE predictor

func TestTAGEBaseBimodalTrains(t *testing.T) {
	tg := newTAGE(256, 16)
	pc := uint64(0x1000)
	if taken, _ := tg.predict(pc); taken {
		t.Error("fresh TAGE should predict not-taken")
	}
	// With no history changes the base provides; two taken outcomes
	// saturate its 2-bit counter toward taken.
	tg.train(0, pc, 0, true)
	tg.train(0, pc, 0, true)
	// The first mispredicted train also allocated a tagged entry for
	// history 0; both the base and the tagged provider now agree.
	if taken, _ := tg.predict(pc); !taken {
		t.Error("trained TAGE should predict taken")
	}
}

// TestTAGEAllocationAndPromotion walks the allocate-on-mispredict
// cascade: each misprediction allocates into the shortest longer-history
// table, and the provider is always the longest matching table.
func TestTAGEAllocationAndPromotion(t *testing.T) {
	tg := newTAGE(256, 16)
	pc := uint64(0x2000)
	hist := uint64(0xABCDE)

	if prov, _, _, _ := tg.lookup(pc, hist); prov != -1 {
		t.Fatalf("fresh lookup provider = %d want base (-1)", prov)
	}
	// Base predicts not-taken; a taken outcome mispredicts and allocates
	// into table 0.
	tg.train(0, pc, hist, true)
	prov, idx, taken, _ := tg.lookup(pc, hist)
	if prov != 0 {
		t.Fatalf("after first mispredict provider = %d want 0", prov)
	}
	if !taken {
		t.Error("allocated entry should start weakly toward the outcome")
	}
	if got := tg.tables[0].entries[idx].tag; got != tg.tables[0].tagOf(pc, hist) {
		t.Errorf("allocated tag = %#x want %#x", got, tg.tables[0].tagOf(pc, hist))
	}

	// The table-0 provider now mispredicts a not-taken outcome: the next
	// allocation must land one table higher, and become the provider.
	tg.train(0, pc, hist, false)
	prov, _, taken, _ = tg.lookup(pc, hist)
	if prov != 1 {
		t.Fatalf("after second mispredict provider = %d want 1", prov)
	}
	if taken {
		t.Error("promoted provider should predict the newer outcome (not-taken)")
	}
}

// TestTAGEProviderSelection checks longest-match wins when several
// tables hold entries for the same (pc, history).
func TestTAGEProviderSelection(t *testing.T) {
	tg := newTAGE(256, 16)
	pc := uint64(0x3000)
	hist := uint64(0x5A5A5)
	// Force entries into every table by alternating outcomes: each flip
	// mispredicts the current provider and allocates the next table up.
	outcome := true
	for i := 0; i < tageNumTables; i++ {
		tg.train(0, pc, hist, outcome)
		outcome = !outcome
	}
	prov, _, _, _ := tg.lookup(pc, hist)
	if prov != tageNumTables-1 {
		t.Fatalf("provider = %d want longest table %d", prov, tageNumTables-1)
	}
}

func TestTAGEUsefulBitGuardsEntry(t *testing.T) {
	tg := newTAGE(256, 16)
	pc := uint64(0x4000)
	hist := uint64(0x1F)
	// Push the base counter firmly not-taken so the alternate stays
	// opposed to the tagged provider throughout.
	tg.train(0, pc, hist, false)
	tg.train(0, pc, hist, true) // base mispredicts: allocate in table 0, weakly taken
	_, idx, _, _ := tg.lookup(pc, hist)
	// Provider (taken) disagrees with the base alternate (not-taken) and
	// is correct: its useful counter must rise.
	tg.train(0, pc, hist, true)
	if u := tg.tables[0].entries[idx].u; u != 1 {
		t.Fatalf("useful counter = %d want 1", u)
	}
	// A wrong prediction that beats no alternate decays usefulness.
	tg.train(0, pc, hist, false)
	if u := tg.tables[0].entries[idx].u; u != 0 {
		t.Fatalf("useful counter after mispredict = %d want 0", u)
	}
}

// TestTAGELearnsBeyondGshareHistory is the leakage surface in predictor
// form: two history contexts identical in gshare's 12-bit window but
// different at depth 21 alias in gshare yet train distinct TAGE entries,
// so only TAGE predicts both contexts correctly — and conversely, a
// secret at that depth becomes observable TAGE state.
func TestTAGELearnsBeyondGshareHistory(t *testing.T) {
	pc := uint64(0x5000)
	h0 := uint64(0x00000FFF) // low 12 bits all ones
	h1 := h0 | 1<<20         // differs only at depth 21

	g := newGshare(2048, 16)
	if ((pc>>2)^h0)&g.mask != ((pc>>2)^h1)&g.mask {
		t.Fatal("test premise broken: gshare must alias h0 and h1")
	}

	tg := newTAGE(2048, 16)
	// Outcome is the deep history bit: taken under h0, not-taken under h1.
	for i := 0; i < 20; i++ {
		tg.train(0, pc, h0, true)
		tg.train(0, pc, h1, false)
	}
	_, _, taken0, _ := tg.lookup(pc, h0)
	_, _, taken1, _ := tg.lookup(pc, h1)
	if !taken0 || taken1 {
		t.Fatalf("TAGE failed to separate deep-history contexts: h0→%v h1→%v", taken0, taken1)
	}
	prov0, idx0, _, _ := tg.lookup(pc, h0)
	prov1, idx1, _, _ := tg.lookup(pc, h1)
	if prov0 < 2 || prov1 < 2 {
		t.Errorf("providers %d,%d should be long-history tables (>=2)", prov0, prov1)
	}
	if prov0 == prov1 && idx0 == idx1 {
		t.Error("deep-history contexts must occupy distinct provider entries")
	}
}

func TestTAGEPredictionMeta(t *testing.T) {
	tg := newTAGE(256, 16)
	pc := uint64(0x6000)
	taken, meta := tg.predict(pc)
	if taken {
		t.Error("fresh TAGE should predict not-taken")
	}
	if meta&(1<<48) == 0 {
		t.Fatalf("meta cookie missing marker bit: %#x", meta)
	}
	if prov := (meta >> 32) & 0xFFFF; prov != 0 {
		t.Errorf("fresh provider field = %d want 0 (base)", prov)
	}
	if meta&1 != 0 {
		t.Error("direction bit should be clear for a not-taken prediction")
	}
	// Allocate a tagged entry for the live history: the cookie's provider
	// field and entry index must change with it.
	tg.train(0, pc, tg.history, true)
	taken, meta2 := tg.predict(pc)
	if !taken {
		t.Error("allocated entry should predict taken")
	}
	if prov := (meta2 >> 32) & 0xFFFF; prov != 1 {
		t.Errorf("provider field = %d want 1 (table 0)", prov)
	}
	if meta2&1 != 1 {
		t.Error("direction bit should be set for a taken prediction")
	}
	if meta2 == meta {
		t.Error("metadata must distinguish base and tagged providers")
	}
}

func TestTAGEHistoryCheckpoint(t *testing.T) {
	tg := newTAGE(256, 16)
	chk := tg.shiftHistory(true)
	tg.shiftHistory(false)
	tg.shiftHistory(true)
	tg.restoreHistory(chk, false)
	want := (chk << 1) & tg.histMask
	if tg.history != want {
		t.Errorf("history = %#x want %#x", tg.history, want)
	}
}

func TestTAGECoreSelection(t *testing.T) {
	cfg := MegaBoom()
	c := newCore(cfg, NewMemory())
	if c.tg != nil {
		t.Error("gshare config must not expose a TAGE ring")
	}
	if _, ok := c.bp.(*gshare); !ok {
		t.Error("default predictor must be gshare")
	}
	cfg.TAGEPredictor = true
	c = newCore(cfg, NewMemory())
	if c.tg == nil {
		t.Fatal("TAGE config must expose the ring alias")
	}
	if c.bp != branchPredictor(c.tg) {
		t.Error("bp and tg must be the same predictor")
	}
}
