package sim

import (
	"testing"
	"testing/quick"
)

// ---------------------------------------------------------------------
// gshare / BTB / RAS

func TestGsharePredictorTrains(t *testing.T) {
	g := newGshare(256, 16)
	pc := uint64(0x1000)
	// Initially weakly not-taken.
	if taken, _ := g.predict(pc); taken {
		t.Error("fresh predictor should predict not-taken")
	}
	// Two taken outcomes saturate toward taken.
	for i := 0; i < 2; i++ {
		_, idx := g.predict(pc)
		g.train(idx, 0, 0, true)
	}
	if taken, _ := g.predict(pc); !taken {
		t.Error("trained predictor should predict taken")
	}
	// Counters saturate: many more taken outcomes, then two not-taken
	// flips it back.
	for i := 0; i < 10; i++ {
		_, idx := g.predict(pc)
		g.train(idx, 0, 0, true)
	}
	_, idx := g.predict(pc)
	g.train(idx, 0, 0, false)
	if taken, _ := g.predict(pc); !taken {
		t.Error("single not-taken must not flip a saturated counter")
	}
	g.train(idx, 0, 0, false)
	if taken, _ := g.predict(pc); taken {
		t.Error("two not-taken outcomes should flip the counter")
	}
}

func TestGshareHistoryCheckpoint(t *testing.T) {
	g := newGshare(256, 16)
	chk := g.shiftHistory(true)
	g.shiftHistory(false)
	g.shiftHistory(true)
	g.restoreHistory(chk, false)
	// After restore+actual(false), history = (chk<<1)|0.
	want := (chk << 1) & ((1 << g.histLen) - 1)
	if g.history != want {
		t.Errorf("history = %b want %b", g.history, want)
	}
}

func TestGshareHistoryAffectsIndex(t *testing.T) {
	g := newGshare(256, 16)
	_, idx1 := g.predict(0x1000)
	g.shiftHistory(true)
	_, idx2 := g.predict(0x1000)
	if idx1 == idx2 {
		t.Error("different global history should index different PHT entries")
	}
}

func TestBTB(t *testing.T) {
	g := newGshare(256, 16)
	if _, ok := g.btbLookup(0x2000); ok {
		t.Error("empty BTB should miss")
	}
	g.btbUpdate(0x2000, 0x8000)
	if target, ok := g.btbLookup(0x2000); !ok || target != 0x8000 {
		t.Errorf("BTB lookup = %#x,%v", target, ok)
	}
	// Aliasing entry replaces.
	g.btbUpdate(0x2000, 0x9000)
	if target, _ := g.btbLookup(0x2000); target != 0x9000 {
		t.Error("BTB should hold the latest target")
	}
}

func TestRAS(t *testing.T) {
	g := newGshare(256, 16)
	if _, ok := g.rasPop(); ok {
		t.Error("empty RAS should miss")
	}
	g.rasPush(0x100)
	g.rasPush(0x200)
	if tgt, ok := g.rasPop(); !ok || tgt != 0x200 {
		t.Errorf("rasPop = %#x,%v want 0x200", tgt, ok)
	}
	if tgt, ok := g.rasPop(); !ok || tgt != 0x100 {
		t.Errorf("rasPop = %#x,%v want 0x100", tgt, ok)
	}
	if _, ok := g.rasPop(); ok {
		t.Error("RAS should now be empty")
	}
	// Overflow wraps (circular): deep call chains lose the oldest.
	for i := 1; i <= rasEntries+2; i++ {
		g.rasPush(uint64(i) * 16)
	}
	if tgt, ok := g.rasPop(); !ok || tgt != uint64(rasEntries+2)*16 {
		t.Errorf("after overflow, top = %#x", tgt)
	}
}

// ---------------------------------------------------------------------
// cache / TLB models

func TestCacheLRU(t *testing.T) {
	c := newCache(2, 2, 64) // 2 sets, 2 ways
	now := int64(0)
	// Lines 0, 2, 4 map to set 0 (even line numbers).
	c.insert(0, now)
	c.insert(2, now+1)
	if !c.present(0) || !c.present(2) {
		t.Fatal("both ways should be filled")
	}
	c.lookup(0, now+2) // refresh line 0
	c.insert(4, now+3) // evicts LRU = line 2
	if !c.present(0) || c.present(2) || !c.present(4) {
		t.Error("LRU eviction selected the wrong victim")
	}
	c.invalidate(4)
	if c.present(4) {
		t.Error("invalidate failed")
	}
}

func TestTLBLRUAndRecency(t *testing.T) {
	tl := newTLB(2)
	tl.insert(10, 0)
	tl.insert(20, 1)
	if !tl.lookup(10, 2) {
		t.Fatal("page 10 should hit")
	}
	tl.insert(30, 3) // evicts page 20 (LRU)
	if tl.lookup(20, 4) {
		t.Error("page 20 should have been evicted")
	}
	order := tl.recencyOrdered()
	if len(order) != 2 || order[0].page != 30 || order[1].page != 10 {
		t.Errorf("recency order wrong: %+v", order)
	}
}

func TestDCacheMissAndFill(t *testing.T) {
	cfg := MegaBoom()
	mem := NewMemory()
	mem.Write(0x1000, 8, 0xABCD)
	d := newDCache(cfg, mem)

	d.tick(0)
	done, ok := d.access(0, 0x1000, 0x4)
	if !ok {
		t.Fatal("first access rejected")
	}
	if done < int64(cfg.MissLat) {
		t.Errorf("miss completed too fast: %d", done)
	}
	// The miss should occupy an MSHR and an LFB entry with the data.
	if d.mshrFor(d.lineOf(0x1000)) == nil {
		t.Error("no MSHR allocated")
	}
	var lfbData uint64
	for _, e := range d.lfb {
		if e.valid && e.lineAddr == d.lineOf(0x1000) {
			lfbData = e.data
		}
	}
	if lfbData != 0xABCD {
		t.Errorf("LFB data = %#x want 0xABCD", lfbData)
	}
	// After the fill completes, the line hits.
	d.tick(done + 1)
	hit, ok := d.access(done+1, 0x1000, 0x4)
	if !ok || hit > done+1+int64(cfg.DCacheHitLat)+int64(cfg.TLBMissLat) {
		t.Errorf("post-fill access not a hit: done=%d", hit)
	}
}

func TestDCacheMSHRMerge(t *testing.T) {
	cfg := MegaBoom()
	d := newDCache(cfg, NewMemory())
	d.tick(0)
	d1, _ := d.access(0, 0x2000, 0)
	d2, ok := d.access(0, 0x2008, 0) // same line: merge
	if !ok {
		t.Fatal("merge rejected")
	}
	if d2 > d1+2 {
		t.Errorf("merged access should complete with the fill: %d vs %d", d2, d1)
	}
	used := 0
	for _, m := range d.mshrs {
		if m.valid {
			used++
		}
	}
	if used != 1 {
		t.Errorf("MSHRs used = %d want 1", used)
	}
}

func TestDCacheMSHRExhaustion(t *testing.T) {
	cfg := MegaBoom()
	cfg.MSHREntries = 2
	d := newDCache(cfg, NewMemory())
	d.tick(0)
	if _, ok := d.access(0, 0x10000, 0); !ok {
		t.Fatal("miss 1 rejected")
	}
	if _, ok := d.access(0, 0x20000, 0); !ok {
		t.Fatal("miss 2 rejected")
	}
	if _, ok := d.access(0, 0x30000, 0); ok {
		t.Error("third concurrent miss should be rejected (MSHRs full)")
	}
}

func TestNextLinePrefetch(t *testing.T) {
	cfg := MegaBoom()
	d := newDCache(cfg, NewMemory())
	d.tick(0)
	d.access(0, 0x4000, 0)
	found := false
	for _, m := range d.nlp {
		if m.valid && m.lineAddr == d.lineOf(0x4000)+1 {
			found = true
		}
	}
	if !found {
		t.Fatal("next-line prefetch not issued")
	}
	// After the prefetch fill, the next line hits directly.
	d.tick(int64(cfg.MissLat) + 1)
	done, ok := d.access(int64(cfg.MissLat)+1, 0x4040, 0)
	if !ok || done > int64(cfg.MissLat)+1+int64(cfg.DCacheHitLat)+int64(cfg.TLBMissLat) {
		t.Errorf("prefetched line should hit, done=%d", done)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	f := func(addr uint64, val uint64, sizeSel uint8) bool {
		addr %= 1 << 40
		sizes := []int{1, 2, 4, 8}
		size := sizes[int(sizeSel)%4]
		m := NewMemory()
		m.Write(addr, size, val)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return m.Read(addr, size) == val&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageBytes - 3)
	m.Write(addr, 8, 0x1122334455667788)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page read = %#x", got)
	}
	if got := m.Read(pageBytes, 4); got != 0x11223344&0xFFFFFFFF && got == 0 {
		t.Error("second page bytes missing")
	}
}

// ---------------------------------------------------------------------
// structural backpressure: the pipeline must stay correct when every
// queue fills.

func tinyConfig() Config {
	c := SmallBoom()
	c.ROBEntries = 8
	c.LDQEntries = 2
	c.STQEntries = 2
	c.IntPRF = 64 + 4 // barely any rename headroom
	c.FetchBufferSize = 4
	c.MSHREntries = 1
	c.LFBEntries = 1
	return c
}

func TestBackpressureCorrectness(t *testing.T) {
	// A store/load/arith-heavy loop must compute correctly even when
	// the ROB, LSQ, PRF and MSHRs are all tiny.
	_, res := runSrc(t, tinyConfig(), `
	.data
buf: .zero 8192
	.text
_start:
	la  s2, buf
	li  s3, 100
	li  s4, 0
loop:
	andi t0, s3, 63
	slli t0, t0, 6        # spread over lines: misses under 1 MSHR
	add  t0, t0, s2
	sd   s3, 0(t0)
	ld   t1, 0(t0)
	add  s4, s4, t1
	mul  t2, t1, t1
	add  s4, s4, t2
	addi s3, s3, -1
	bnez s3, loop
	mv   a0, s4
	li   t0, 0xFFFFF
	and  a0, a0, t0
	j    exit
`+exitStub)
	want := uint64(0)
	for i := uint64(100); i >= 1; i-- {
		want += i + i*i
	}
	want &= 0xFFFFF
	if res.ExitCode != want {
		t.Errorf("backpressure run = %d want %d", res.ExitCode, want)
	}
}

func TestPRFExhaustionStallsButCompletes(t *testing.T) {
	cfg := SmallBoom()
	cfg.IntPRF = 64 + 2 // almost no free physical registers
	_, res := runSrc(t, cfg, `
_start:
	li  t0, 50
	li  a0, 0
loop:
	addi a0, a0, 3
	addi t0, t0, -1
	bnez t0, loop
	j exit
`+exitStub)
	if res.ExitCode != 150 {
		t.Errorf("exit = %d want 150", res.ExitCode)
	}
}

func TestStoreLoadForwardingPartialOverlap(t *testing.T) {
	// A narrow store followed by a wide load overlapping it must wait
	// for the store to commit, not forward stale bytes.
	_, res := runSrc(t, MegaBoom(), `
	.data
buf: .dword 0
	.text
_start:
	la  t0, buf
	li  t1, 0x1111111111111111
	sd  t1, 0(t0)
	li  t2, 0xFF
	sb  t2, 3(t0)         # narrow store
	ld  a0, 0(t0)         # wide load overlapping the byte
	srli a0, a0, 24
	andi a0, a0, 0xFF     # must see 0xFF
	j exit
`+exitStub)
	if res.ExitCode != 0xFF {
		t.Errorf("partial-overlap load = %#x want 0xFF", res.ExitCode)
	}
}

func TestNestedMispredictRecovery(t *testing.T) {
	// Nested data-dependent branches force mispredicts on both levels;
	// the architectural sum must be exact.
	_, res := runSrc(t, MegaBoom(), `
_start:
	li  s2, 64
	li  s3, 0
loop:
	andi t0, s2, 1
	beqz t0, even
	andi t1, s2, 2
	beqz t1, odd_a
	addi s3, s3, 1
	j next
odd_a:
	addi s3, s3, 2
	j next
even:
	andi t1, s2, 4
	beqz t1, even_a
	addi s3, s3, 4
	j next
even_a:
	addi s3, s3, 8
next:
	addi s2, s2, -1
	bnez s2, loop
	mv a0, s3
	j exit
`+exitStub)
	want := uint64(0)
	for i := 64; i >= 1; i-- {
		switch {
		case i&1 == 1 && i&2 != 0:
			want++
		case i&1 == 1:
			want += 2
		case i&4 != 0:
			want += 4
		default:
			want += 8
		}
	}
	if res.ExitCode != want {
		t.Errorf("nested branches = %d want %d", res.ExitCode, want)
	}
}

func TestReturnAddressStackPrediction(t *testing.T) {
	// Alternating call sites: a BTB-only predictor mispredicts every
	// other return; the RAS should get them right.
	_, res := runSrc(t, MegaBoom(), `
_start:
	li  s2, 40
	li  s3, 0
loop:
	call f
	add  s3, s3, a0
	call g
	add  s3, s3, a0
	addi s2, s2, -1
	bnez s2, loop
	mv  a0, s3
	j exit
f:
	li a0, 1
	ret
g:
	li a0, 2
	ret
`+exitStub)
	if res.ExitCode != 120 {
		t.Errorf("exit = %d want 120", res.ExitCode)
	}
	if res.Mispredicts > res.Branches/4 {
		t.Errorf("too many mispredicts with a RAS: %d of %d",
			res.Mispredicts, res.Branches)
	}
}

func TestResultStatistics(t *testing.T) {
	_, res := runSrc(t, MegaBoom(), `
	.data
buf: .zero 16384
	.text
_start:
	la  t0, buf
	li  t1, 64
loop:
	ld  t2, 0(t0)
	addi t0, t0, 128      # every other line: misses
	addi t1, t1, -1
	bnez t1, loop
	la  t0, buf
	li  t1, 64
loop2:                    # second pass over cached lines: hits
	ld  t2, 0(t0)
	addi t0, t0, 128
	addi t1, t1, -1
	bnez t1, loop2
	li a0, 0
	j exit
`+exitStub)
	if res.DCacheMisses == 0 {
		t.Error("strided loads should record misses")
	}
	if res.DCacheHits == 0 {
		t.Error("the second pass over cached lines should record hits")
	}
	if res.TLBMisses == 0 {
		t.Error("buffer pages should record TLB misses")
	}
	if res.Prefetches == 0 {
		t.Error("next-line prefetcher should have fired")
	}
}
