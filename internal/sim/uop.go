package sim

import (
	"math"

	"microsampler/internal/isa"
)

const never = math.MaxInt64

// uop is a micro-op in flight: one decoded instruction plus all of its
// renaming, prediction and execution state.
type uop struct {
	seq  uint64
	pc   uint64
	inst isa.Inst

	// Decode trap (illegal instruction on this path).
	trap bool

	// Branch prediction state captured at fetch.
	predTaken  bool
	predTarget uint64
	phtIdx     uint64
	histChk    uint64

	// Rename state.
	pdst   int16 // physical destination (-1: none)
	ps1    int16
	ps2    int16
	stale  int16      // previous mapping of rd, freed at commit
	ratChk *[32]int16 // RAT checkpoint (branches only)

	// Execution state.
	inIQ      bool
	issued    bool
	resolved  bool // branches: outcome processed
	completed bool
	doneAt    int64
	result    uint64

	// Memory state.
	addrReady bool
	memIssued bool
	memAddr   uint64
	memSize   int
	storeData uint64

	// Fast-bypass folding (shares a ROB slot with its neighbour).
	folded bool

	// Branch outcome.
	taken  bool
	target uint64
}

func newUop(seq uint64, pc uint64, inst isa.Inst) *uop {
	return &uop{
		seq:    seq,
		pc:     pc,
		inst:   inst,
		pdst:   -1,
		ps1:    -1,
		ps2:    -1,
		stale:  -1,
		doneAt: never,
	}
}

// memAccessSize returns the access width in bytes for a load or store.
func memAccessSize(op isa.Op) int {
	switch op {
	case isa.OpLB, isa.OpLBU, isa.OpSB:
		return 1
	case isa.OpLH, isa.OpLHU, isa.OpSH:
		return 2
	case isa.OpLW, isa.OpLWU, isa.OpSW:
		return 4
	default:
		return 8
	}
}
