package siphash

import (
	"encoding/binary"
	"testing"
)

// FuzzSipHashChunks asserts that the digest is independent of how the
// input is sliced across Write calls, and that the WriteUint64 fast
// path agrees with the byte path — the property the snapshot layer's
// incremental hashing depends on.
func FuzzSipHashChunks(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte("hello, siphash"), uint8(3))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, uint8(7))
	f.Add([]byte{0xFF}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, split uint8) {
		want := Hash(DefaultKey, data)

		// Arbitrary chunking must not change the digest.
		h := New(DefaultKey)
		step := int(split)%7 + 1
		for rest := data; len(rest) > 0; {
			n := step
			if n > len(rest) {
				n = len(rest)
			}
			h.Write(rest[:n]) //nolint:errcheck // cannot fail
			rest = rest[n:]
		}
		if got := h.Sum64(); got != want {
			t.Errorf("chunked (step %d) = %#x, one-shot = %#x", step, got, want)
		}

		// The word fast path must agree with writing the same bytes,
		// for every multiple-of-8 prefix and regardless of buffered
		// leading bytes.
		lead := int(split) % 8
		if lead > len(data) {
			lead = len(data)
		}
		words := data[lead:]
		words = words[:len(words)/8*8]
		hw := New(DefaultKey)
		hb := New(DefaultKey)
		hw.Write(data[:lead]) //nolint:errcheck // cannot fail
		hb.Write(data[:lead]) //nolint:errcheck // cannot fail
		for i := 0; i < len(words); i += 8 {
			hw.WriteUint64(binary.LittleEndian.Uint64(words[i : i+8]))
		}
		hb.Write(words) //nolint:errcheck // cannot fail
		if gw, gb := hw.Sum64(), hb.Sum64(); gw != gb {
			t.Errorf("WriteUint64 path %#x != Write path %#x (lead %d, %d words)",
				gw, gb, lead, len(words)/8)
		}
	})
}
