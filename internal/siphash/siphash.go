// Package siphash implements SipHash-2-4 producing 64-bit digests. The
// paper hashes every microarchitectural iteration snapshot with Python's
// default SipHash; this package is the equivalent primitive, guaranteeing
// that identical state matrices collapse to identical hashes while
// distinct matrices collide with probability ~2^-64.
package siphash

import "math/bits"

// Key is a 128-bit SipHash key.
type Key struct {
	K0, K1 uint64
}

// DefaultKey is the fixed key used for snapshot hashing. The analysis
// needs hashes to be stable across runs, not secret, so a published
// constant is appropriate.
var DefaultKey = Key{K0: 0x0706050403020100, K1: 0x0f0e0d0c0b0a0908}

// Hash computes the SipHash-2-4 digest of data under the key.
func Hash(k Key, data []byte) uint64 {
	h := New(k)
	h.Write(data)
	return h.Sum64()
}

// Hasher is an incremental SipHash-2-4 state. The zero value is not
// usable; construct with New.
type Hasher struct {
	v0, v1, v2, v3 uint64
	buf            [8]byte
	bufLen         int
	length         uint64
}

// New returns a Hasher initialised with the key.
func New(k Key) *Hasher {
	h := &Hasher{}
	h.Reset(k)
	return h
}

// Reset reinitialises the hasher to its post-New state under the key,
// discarding all absorbed data. It lets long-lived recorders rehash
// without allocating a fresh Hasher per iteration.
func (h *Hasher) Reset(k Key) {
	h.v0 = k.K0 ^ 0x736f6d6570736575
	h.v1 = k.K1 ^ 0x646f72616e646f6d
	h.v2 = k.K0 ^ 0x6c7967656e657261
	h.v3 = k.K1 ^ 0x7465646279746573
	h.bufLen = 0
	h.length = 0
}

func (h *Hasher) round() {
	h.v0 += h.v1
	h.v1 = bits.RotateLeft64(h.v1, 13)
	h.v1 ^= h.v0
	h.v0 = bits.RotateLeft64(h.v0, 32)
	h.v2 += h.v3
	h.v3 = bits.RotateLeft64(h.v3, 16)
	h.v3 ^= h.v2
	h.v0 += h.v3
	h.v3 = bits.RotateLeft64(h.v3, 21)
	h.v3 ^= h.v0
	h.v2 += h.v1
	h.v1 = bits.RotateLeft64(h.v1, 17)
	h.v1 ^= h.v2
	h.v2 = bits.RotateLeft64(h.v2, 32)
}

func (h *Hasher) block(m uint64) {
	h.v3 ^= m
	h.round()
	h.round()
	h.v0 ^= m
}

// Write absorbs data into the hash state. It never fails.
func (h *Hasher) Write(data []byte) (int, error) {
	n := len(data)
	h.length += uint64(n)
	if h.bufLen > 0 {
		for len(data) > 0 && h.bufLen < 8 {
			h.buf[h.bufLen] = data[0]
			h.bufLen++
			data = data[1:]
		}
		if h.bufLen == 8 {
			h.block(le64(h.buf[:]))
			h.bufLen = 0
		}
	}
	for len(data) >= 8 {
		h.block(le64(data))
		data = data[8:]
	}
	for _, b := range data {
		h.buf[h.bufLen] = b
		h.bufLen++
	}
	return n, nil
}

// WriteUint64 absorbs one little-endian 64-bit word; it is the hot path
// for snapshot matrices.
func (h *Hasher) WriteUint64(v uint64) {
	if h.bufLen == 0 {
		h.length += 8
		h.block(v)
		return
	}
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:]) //nolint:errcheck // cannot fail
}

// Sum64 returns the digest of the data absorbed so far. Finalisation
// runs on a copy of the state, so Sum64 is idempotent and the Hasher
// remains usable for further writes.
func (h *Hasher) Sum64() uint64 {
	f := *h
	var last uint64
	for i := 0; i < f.bufLen; i++ {
		last |= uint64(f.buf[i]) << (8 * i)
	}
	last |= (f.length & 0xFF) << 56
	f.block(last)
	f.v2 ^= 0xFF
	f.round()
	f.round()
	f.round()
	f.round()
	return f.v0 ^ f.v1 ^ f.v2 ^ f.v3
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
