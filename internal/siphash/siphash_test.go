package siphash

import (
	"testing"
	"testing/quick"
)

// Reference vectors from the SipHash paper / reference implementation:
// key = 000102...0f, message = first n bytes of 00,01,02,...
var refVectors = []uint64{
	0x726fdb47dd0e0e31,
	0x74f839c593dc67fd,
	0x0d6c8009d9a94f5a,
	0x85676696d7fb7e2d,
	0xcf2794e0277187b7,
	0x18765564cd99a68d,
	0xcbc9466e58fee3ce,
	0xab0200f58b01d137,
	0x93f5f5799a932462,
	0x9e0082df0ba9e4b0,
	0x7a5dbbc594ddb9f3,
	0xf4b32f46226bada7,
	0x751e8fbc860ee5fb,
	0x14ea5627c0843d90,
	0xf723ca908e7af2ee,
	0xa129ca6149be45e5,
}

func TestReferenceVectors(t *testing.T) {
	msg := make([]byte, len(refVectors))
	for i := range msg {
		msg[i] = byte(i)
	}
	for n, want := range refVectors {
		got := Hash(DefaultKey, msg[:n])
		if got != want {
			t.Errorf("len %d: got %#016x want %#016x", n, got, want)
		}
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	f := func(data []byte, split uint8) bool {
		s := int(split) % (len(data) + 1)
		h := New(DefaultKey)
		h.Write(data[:s]) //nolint:errcheck
		h.Write(data[s:]) //nolint:errcheck
		return h.Sum64() == Hash(DefaultKey, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteUint64MatchesBytes(t *testing.T) {
	f := func(words []uint64) bool {
		h1 := New(DefaultKey)
		for _, w := range words {
			h1.WriteUint64(w)
		}
		h2 := New(DefaultKey)
		buf := make([]byte, 0, 8*len(words))
		for _, w := range words {
			for i := 0; i < 8; i++ {
				buf = append(buf, byte(w>>(8*i)))
			}
		}
		h2.Write(buf) //nolint:errcheck
		return h1.Sum64() == h2.Sum64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	data := []byte("microsampler snapshot")
	a := Hash(DefaultKey, data)
	b := Hash(Key{K0: 1, K1: 2}, data)
	if a == b {
		t.Error("different keys produced identical hashes")
	}
}

func TestDistinctInputsDiffer(t *testing.T) {
	seen := make(map[uint64][]byte)
	buf := make([]byte, 4)
	for i := 0; i < 100000; i++ {
		buf[0], buf[1], buf[2], buf[3] = byte(i), byte(i>>8), byte(i>>16), 0
		h := Hash(DefaultKey, buf)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between % x and % x", prev, buf)
		}
		seen[h] = append([]byte(nil), buf...)
	}
}

func BenchmarkHash1K(b *testing.B) {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Hash(DefaultKey, data)
	}
}
