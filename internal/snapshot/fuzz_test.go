package snapshot

import (
	"encoding/binary"
	"testing"
)

// matrixFrom decodes fuzz bytes into a small non-empty snapshot matrix:
// the first bytes pick the shape, the rest fill cells little-endian.
func matrixFrom(data []byte) [][]uint64 {
	rows := 1
	cols := 1
	if len(data) > 0 {
		rows = 1 + int(data[0])%8
		data = data[1:]
	}
	if len(data) > 0 {
		cols = 1 + int(data[0])%6
		data = data[1:]
	}
	m := make([][]uint64, rows)
	for i := range m {
		m[i] = make([]uint64, cols)
		for j := range m[i] {
			var cell [8]byte
			n := copy(cell[:], data)
			data = data[n:]
			m[i][j] = binary.LittleEndian.Uint64(cell[:])
		}
	}
	return m
}

// FuzzHashMatrix asserts the snapshot hashing invariants on arbitrary
// matrices: determinism, agreement between the one-shot and the
// incremental (Recorder) hashers, the timing-removal correspondence,
// and sensitivity — any single-cell mutation and any row-boundary
// change must change the hash.
func FuzzHashMatrix(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{3, 2, 1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(5))
	f.Add([]byte{7, 5, 0, 0, 0, 0, 0, 0, 0, 0}, uint16(999))
	f.Add([]byte{1, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint16(63))
	f.Fuzz(func(t *testing.T, data []byte, mut uint16) {
		m := matrixFrom(data)
		h := HashMatrix(m)
		if h != HashMatrix(m) {
			t.Fatal("HashMatrix not deterministic")
		}

		// The incremental recorder must agree with the one-shot hash,
		// and its timing-free hash with hashing the consolidated matrix.
		r := NewRecorder()
		for _, row := range m {
			r.AddRow(row)
		}
		full, noTiming, rows := r.Finish()
		if full != h {
			t.Errorf("Recorder full hash %#x != HashMatrix %#x", full, h)
		}
		if want := HashMatrix(Consolidate(m)); noTiming != want {
			t.Errorf("Recorder timing-free hash %#x != consolidated HashMatrix %#x",
				noTiming, want)
		}
		if len(rows) != len(m) {
			t.Errorf("Recorder kept %d rows, want %d", len(rows), len(m))
		}

		// Single-cell mutation sensitivity: flip one bit of one cell.
		ri := int(mut) % len(m)
		ci := int(mut>>4) % len(m[ri])
		bit := uint(mut>>8) % 64
		m[ri][ci] ^= 1 << bit
		if HashMatrix(m) == h {
			t.Errorf("flipping bit %d of cell (%d,%d) did not change the hash", bit, ri, ci)
		}
		m[ri][ci] ^= 1 << bit

		// Row-boundary sensitivity: merging two adjacent rows keeps the
		// flattened contents but must still change the hash.
		if len(m) >= 2 {
			merged := make([][]uint64, 0, len(m)-1)
			joined := append(append([]uint64{}, m[0]...), m[1]...)
			merged = append(merged, joined)
			merged = append(merged, m[2:]...)
			if HashMatrix(merged) == h {
				t.Error("merging row boundary did not change the hash")
			}
		}
	})
}

// FuzzStoreObserve asserts the deduplicating store's bookkeeping under
// arbitrary observation sequences: per-class counts sum to the number
// of observations, entries stay unique by hash, and Merge is equivalent
// to observing everything in one store.
func FuzzStoreObserve(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		one := NewStore()
		a, b := NewStore(), NewStore()
		obs := 0
		for i := 0; i+1 < len(data); i += 2 {
			class := uint64(data[i]) % 3
			hash := uint64(data[i+1]) % 8 // force collisions
			rows := [][]uint64{{hash}}
			one.Observe(class, hash, rows)
			if i%4 == 0 {
				a.Observe(class, hash, rows)
			} else {
				b.Observe(class, hash, rows)
			}
			obs++
		}
		total := 0
		seen := map[uint64]bool{}
		for _, e := range one.Entries() {
			if seen[e.Hash] {
				t.Fatalf("hash %#x appears twice in Entries", e.Hash)
			}
			seen[e.Hash] = true
			total += e.Total()
		}
		if total != obs {
			t.Errorf("store counts %d observations, want %d", total, obs)
		}
		a.Merge(b)
		if a.Unique() != one.Unique() {
			t.Errorf("merged store has %d unique, combined run has %d", a.Unique(), one.Unique())
		}
		for _, e := range one.Entries() {
			var me *Entry
			for _, c := range a.Entries() {
				if c.Hash == e.Hash {
					me = c
					break
				}
			}
			if me == nil {
				t.Fatalf("hash %#x missing after merge", e.Hash)
			}
			for class, n := range e.CountByClass {
				if me.CountByClass[class] != n {
					t.Errorf("hash %#x class %d: merged count %d, want %d",
						e.Hash, class, me.CountByClass[class], n)
				}
			}
		}
	})
}
