// Package snapshot implements microarchitectural iteration snapshots
// (Section V-B of the paper): 2D matrices of per-cycle unit state, their
// 64-bit hashing, the timing-removal transform used in the fast-bypass
// case study, and a store that deduplicates matrices by hash while
// counting occurrences per secret class.
package snapshot

import (
	"microsampler/internal/siphash"
)

// HashMatrix hashes a snapshot matrix. Row boundaries are included so
// that matrices with the same flattened contents but different shapes
// hash differently.
func HashMatrix(rows [][]uint64) uint64 {
	h := siphash.New(siphash.DefaultKey)
	for _, row := range rows {
		h.WriteUint64(uint64(len(row)) | 1<<63)
		for _, v := range row {
			h.WriteUint64(v)
		}
	}
	return h.Sum64()
}

// Consolidate removes consecutive duplicate rows, discarding the timing
// information of the snapshot (Section VII-B2: "consolidating
// consecutive occurrences of the same values to a single value"). The
// result shares no storage with the input.
func Consolidate(rows [][]uint64) [][]uint64 {
	out := make([][]uint64, 0, len(rows))
	for i, row := range rows {
		if i > 0 && rowsEqual(row, rows[i-1]) {
			continue
		}
		cp := make([]uint64, len(row))
		copy(cp, row)
		out = append(out, cp)
	}
	return out
}

func rowsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Recorder accumulates the rows of one iteration snapshot for a single
// microarchitectural unit. It hashes incrementally (both the full and
// the timing-free variant) and keeps the raw row values so that a newly
// seen snapshot can be retained as the representative matrix.
//
// Rows are stored in a flat arena (one values slice plus per-row end
// offsets) that is reused across Reset calls, so the per-cycle AddRow /
// AddValue path performs no steady-state allocations once the arena has
// grown to cover the longest iteration.
type Recorder struct {
	vals     []uint64 // flat arena of all row values, in row order
	ends     []int    // ends[i] is the end offset of row i in vals
	full     siphash.Hasher
	noTiming siphash.Hasher
	// Last distinct row, as offsets into vals (offsets stay valid when
	// the arena reallocates, unlike subslice headers).
	lastStart, lastEnd int
	hasLast            bool
	rows               [][]uint64 // scratch rebuilt by Rows, reused
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	r := &Recorder{}
	r.Reset()
	return r
}

// Reset clears the recorder for the next iteration, retaining the
// arena's capacity.
func (r *Recorder) Reset() {
	r.vals = r.vals[:0]
	r.ends = r.ends[:0]
	r.rows = r.rows[:0]
	r.full.Reset(siphash.DefaultKey)
	r.noTiming.Reset(siphash.DefaultKey)
	r.lastStart, r.lastEnd = 0, 0
	r.hasLast = false
}

// AddRow appends one cycle's state row. The row is copied into the
// arena; the caller may reuse its slice.
func (r *Recorder) AddRow(row []uint64) {
	start := len(r.vals)
	r.vals = append(r.vals, row...)
	r.commitRow(start)
}

// AddValue appends a single-value row. It is equivalent to
// AddRow([]uint64{v}) — same hash, same stored row — without
// materialising the one-element slice, which lets event streams feed the
// recorder value by value off the hot path's scratch buffers.
func (r *Recorder) AddValue(v uint64) {
	start := len(r.vals)
	r.vals = append(r.vals, v)
	r.commitRow(start)
}

// commitRow seals vals[start:] as one row: records its end offset and
// streams it into the full hash, and into the timing-free hash when it
// differs from the previous distinct row.
func (r *Recorder) commitRow(start int) {
	end := len(r.vals)
	r.ends = append(r.ends, end)
	row := r.vals[start:end]
	r.full.WriteUint64(uint64(len(row)) | 1<<63)
	for _, v := range row {
		r.full.WriteUint64(v)
	}
	if !r.hasLast || !rowsEqual(row, r.vals[r.lastStart:r.lastEnd]) {
		r.noTiming.WriteUint64(uint64(len(row)) | 1<<63)
		for _, v := range row {
			r.noTiming.WriteUint64(v)
		}
		r.lastStart, r.lastEnd = start, end
		r.hasLast = true
	}
}

// Cycles returns the number of rows recorded so far.
func (r *Recorder) Cycles() int { return len(r.ends) }

// Hashes returns the full and timing-free hashes of the rows recorded
// so far. It does not disturb the recorder.
func (r *Recorder) Hashes() (full, noTiming uint64) {
	return r.full.Sum64(), r.noTiming.Sum64()
}

// Rows materialises the recorded rows as arena-backed subslices. The
// result is only valid until the next Reset or Add; callers that keep
// it must copy (Store does).
func (r *Recorder) Rows() [][]uint64 {
	rows := r.rows[:0]
	start := 0
	for _, end := range r.ends {
		rows = append(rows, r.vals[start:end:end])
		start = end
	}
	r.rows = rows
	return rows
}

// Finish returns the full and timing-free hashes plus the recorded rows.
// The returned rows alias the recorder's arena and are only valid until
// the next Reset; callers that keep them must copy (Store does).
func (r *Recorder) Finish() (full, noTiming uint64, rows [][]uint64) {
	full, noTiming = r.Hashes()
	return full, noTiming, r.Rows()
}

// Entry is one unique snapshot with its per-class observation counts
// and a retained representative matrix.
type Entry struct {
	Hash         uint64
	CountByClass map[uint64]int
	Rep          [][]uint64 // representative matrix (first occurrence)
	Cycles       int
}

// Total returns the entry's total observation count.
func (e *Entry) Total() int {
	n := 0
	for _, c := range e.CountByClass {
		n += c
	}
	return n
}

// Store deduplicates iteration snapshots of one unit by hash.
type Store struct {
	byHash map[uint64]*Entry
	order  []uint64 // insertion order for deterministic iteration
}

// NewStore returns an empty Store.
func NewStore() *Store {
	return &Store{byHash: make(map[uint64]*Entry)}
}

// Observe records one snapshot occurrence. The rows are copied only when
// the hash has not been seen before.
func (s *Store) Observe(class, hash uint64, rows [][]uint64) {
	e := s.byHash[hash]
	if e == nil {
		rep := make([][]uint64, len(rows))
		for i, row := range rows {
			rep[i] = make([]uint64, len(row))
			copy(rep[i], row)
		}
		e = &Entry{
			Hash:         hash,
			CountByClass: make(map[uint64]int, 2),
			Rep:          rep,
			Cycles:       len(rows),
		}
		s.byHash[hash] = e
		s.order = append(s.order, hash)
	}
	e.CountByClass[class]++
}

// ObserveLazy records one snapshot occurrence like Observe, but only
// materialises the rows (via the callback) when the hash is new. It
// avoids building transformed matrices for already-seen snapshots.
func (s *Store) ObserveLazy(class, hash uint64, rows func() [][]uint64) {
	if e := s.byHash[hash]; e != nil {
		e.CountByClass[class]++
		return
	}
	s.Observe(class, hash, rows())
}

// ObserveFrom folds one snapshot occurrence straight from a recorder,
// materialising its rows only when the hash is new. Unlike ObserveLazy
// it needs no closure, so the seen-hash fast path is allocation-free.
func (s *Store) ObserveFrom(class, hash uint64, r *Recorder) {
	if e := s.byHash[hash]; e != nil {
		e.CountByClass[class]++
		return
	}
	s.Observe(class, hash, r.Rows())
}

// Merge folds another store's observations into s. Representative
// matrices of hashes new to s are shared, not copied; the source store
// must not be mutated afterwards.
func (s *Store) Merge(o *Store) {
	for _, h := range o.order {
		oe := o.byHash[h]
		e := s.byHash[h]
		if e == nil {
			e = &Entry{
				Hash:         oe.Hash,
				CountByClass: make(map[uint64]int, len(oe.CountByClass)),
				Rep:          oe.Rep,
				Cycles:       oe.Cycles,
			}
			s.byHash[h] = e
			s.order = append(s.order, h)
		}
		for class, n := range oe.CountByClass {
			e.CountByClass[class] += n
		}
	}
}

// Entries returns the unique snapshots in first-seen order.
func (s *Store) Entries() []*Entry {
	out := make([]*Entry, 0, len(s.order))
	for _, h := range s.order {
		out = append(out, s.byHash[h])
	}
	return out
}

// Unique returns the number of distinct snapshots.
func (s *Store) Unique() int { return len(s.byHash) }

// ModalByClass returns, per class, the most frequently observed entry
// (ties broken by first-seen order).
func (s *Store) ModalByClass() map[uint64]*Entry {
	out := make(map[uint64]*Entry)
	best := make(map[uint64]int)
	for _, h := range s.order {
		e := s.byHash[h]
		for class, n := range e.CountByClass {
			if n > best[class] {
				best[class] = n
				out[class] = e
			}
		}
	}
	return out
}
