package snapshot

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashMatrixDeterministic(t *testing.T) {
	m := [][]uint64{{1, 2, 3}, {4, 5, 6}}
	if HashMatrix(m) != HashMatrix(m) {
		t.Error("hash not deterministic")
	}
}

func TestHashMatrixShapeSensitive(t *testing.T) {
	a := [][]uint64{{1, 2}, {3}}
	b := [][]uint64{{1}, {2, 3}}
	c := [][]uint64{{1, 2, 3}}
	if HashMatrix(a) == HashMatrix(b) || HashMatrix(a) == HashMatrix(c) {
		t.Error("matrices with different shapes must hash differently")
	}
}

func TestHashMatrixValueSensitive(t *testing.T) {
	f := func(vals []uint64, idx uint8) bool {
		if len(vals) == 0 {
			return true
		}
		m1 := [][]uint64{append([]uint64(nil), vals...)}
		m2 := [][]uint64{append([]uint64(nil), vals...)}
		i := int(idx) % len(vals)
		m2[0][i] ^= 1
		return HashMatrix(m1) != HashMatrix(m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConsolidate(t *testing.T) {
	in := [][]uint64{{1, 2}, {1, 2}, {1, 2}, {3}, {3}, {1, 2}}
	out := Consolidate(in)
	want := [][]uint64{{1, 2}, {3}, {1, 2}}
	if len(out) != len(want) {
		t.Fatalf("consolidated to %d rows, want %d", len(out), len(want))
	}
	for i := range want {
		if !rowsEqual(out[i], want[i]) {
			t.Errorf("row %d = %v want %v", i, out[i], want[i])
		}
	}
	// Must not alias the input.
	out[0][0] = 99
	if in[0][0] == 99 {
		t.Error("Consolidate aliases input storage")
	}
}

func TestConsolidateEmpty(t *testing.T) {
	if got := Consolidate(nil); len(got) != 0 {
		t.Errorf("Consolidate(nil) = %v", got)
	}
}

func TestRecorderMatchesHashMatrix(t *testing.T) {
	const seed = 3
	t.Logf("rng seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 50; trial++ {
		rows := make([][]uint64, rng.Intn(20))
		for i := range rows {
			row := make([]uint64, rng.Intn(5)+1)
			for j := range row {
				row[j] = uint64(rng.Intn(4)) // small domain: duplicates likely
			}
			rows[i] = row
		}
		r := NewRecorder()
		for _, row := range rows {
			r.AddRow(row)
		}
		full, noTiming, kept := r.Finish()
		if full != HashMatrix(rows) {
			t.Fatalf("trial %d: incremental full hash mismatch", trial)
		}
		if noTiming != HashMatrix(Consolidate(rows)) {
			t.Fatalf("trial %d: incremental no-timing hash mismatch", trial)
		}
		if len(kept) != len(rows) {
			t.Fatalf("trial %d: kept %d rows want %d", trial, len(kept), len(rows))
		}
	}
}

func TestRecorderTimingInvariance(t *testing.T) {
	// Two recordings that differ only in how long each state persists
	// must agree on the no-timing hash and disagree on the full hash.
	r1, r2 := NewRecorder(), NewRecorder()
	for i := 0; i < 3; i++ {
		r1.AddRow([]uint64{7})
	}
	r1.AddRow([]uint64{9})
	r2.AddRow([]uint64{7})
	for i := 0; i < 5; i++ {
		r2.AddRow([]uint64{9})
	}
	f1, n1, _ := r1.Finish()
	f2, n2, _ := r2.Finish()
	if n1 != n2 {
		t.Error("no-timing hashes should match")
	}
	if f1 == f2 {
		t.Error("full hashes should differ")
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	r.AddRow([]uint64{1})
	r.Reset()
	if r.Cycles() != 0 {
		t.Error("reset did not clear rows")
	}
	r.AddRow([]uint64{2})
	full, _, _ := r.Finish()
	if full != HashMatrix([][]uint64{{2}}) {
		t.Error("reset recorder hash wrong")
	}
}

func TestStoreCountsAndDedup(t *testing.T) {
	s := NewStore()
	mA := [][]uint64{{1, 2}}
	mB := [][]uint64{{3, 4}}
	hA, hB := HashMatrix(mA), HashMatrix(mB)
	for i := 0; i < 5; i++ {
		s.Observe(0, hA, mA)
	}
	for i := 0; i < 3; i++ {
		s.Observe(1, hB, mB)
	}
	s.Observe(1, hA, mA)
	if s.Unique() != 2 {
		t.Fatalf("unique = %d want 2", s.Unique())
	}
	ents := s.Entries()
	if ents[0].Hash != hA || ents[1].Hash != hB {
		t.Error("entries not in first-seen order")
	}
	if ents[0].CountByClass[0] != 5 || ents[0].CountByClass[1] != 1 {
		t.Errorf("counts wrong: %v", ents[0].CountByClass)
	}
	if ents[0].Total() != 6 || ents[1].Total() != 3 {
		t.Error("totals wrong")
	}
	modal := s.ModalByClass()
	if modal[0].Hash != hA || modal[1].Hash != hB {
		t.Error("modal entries wrong")
	}
}

func TestStoreRepIsCopied(t *testing.T) {
	s := NewStore()
	m := [][]uint64{{42}}
	s.Observe(0, HashMatrix(m), m)
	m[0][0] = 0
	if s.Entries()[0].Rep[0][0] != 42 {
		t.Error("store representative aliases caller rows")
	}
}

func TestStoreMerge(t *testing.T) {
	a, b := NewStore(), NewStore()
	m1 := [][]uint64{{1}}
	m2 := [][]uint64{{2}}
	m3 := [][]uint64{{3}}
	h1, h2, h3 := HashMatrix(m1), HashMatrix(m2), HashMatrix(m3)
	a.Observe(0, h1, m1)
	a.Observe(1, h2, m2)
	b.Observe(0, h1, m1) // overlaps with a
	b.Observe(1, h3, m3) // new to a
	b.Observe(1, h3, m3)
	a.Merge(b)
	if a.Unique() != 3 {
		t.Fatalf("unique after merge = %d want 3", a.Unique())
	}
	ents := a.Entries()
	if ents[0].Hash != h1 || ents[0].CountByClass[0] != 2 {
		t.Errorf("merged counts wrong: %+v", ents[0].CountByClass)
	}
	if ents[2].Hash != h3 || ents[2].CountByClass[1] != 2 {
		t.Errorf("new entry wrong: %+v", ents[2])
	}
	if ents[2].Rep[0][0] != 3 {
		t.Error("representative not carried over")
	}
}

func TestObserveLazy(t *testing.T) {
	s := NewStore()
	m := [][]uint64{{9}}
	h := HashMatrix(m)
	calls := 0
	gen := func() [][]uint64 { calls++; return m }
	s.ObserveLazy(0, h, gen)
	s.ObserveLazy(0, h, gen)
	s.ObserveLazy(1, h, gen)
	if calls != 1 {
		t.Errorf("rows materialised %d times, want 1", calls)
	}
	if s.Entries()[0].Total() != 3 {
		t.Errorf("counts = %d want 3", s.Entries()[0].Total())
	}
}

func TestAddValueMatchesSingleValueRow(t *testing.T) {
	// The streaming event API must be hash-identical to building the
	// equivalent single-value rows: the collector switched from
	// AddRow([]uint64{v}) to AddValue(v) and the snapshot identity of
	// every event stream has to survive that switch.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		vals := make([]uint64, rng.Intn(30))
		for i := range vals {
			vals[i] = uint64(rng.Intn(5)) // duplicates likely
		}
		a, b := NewRecorder(), NewRecorder()
		for _, v := range vals {
			a.AddValue(v)
			b.AddRow([]uint64{v})
		}
		af, an := a.Hashes()
		bf, bn := b.Hashes()
		if af != bf || an != bn {
			t.Fatalf("trial %d: AddValue (%x,%x) != AddRow (%x,%x)",
				trial, af, an, bf, bn)
		}
		rows := a.Rows()
		if len(rows) != len(vals) {
			t.Fatalf("trial %d: %d rows want %d", trial, len(rows), len(vals))
		}
		for i, v := range vals {
			if len(rows[i]) != 1 || rows[i][0] != v {
				t.Fatalf("trial %d row %d = %v want [%d]", trial, i, rows[i], v)
			}
		}
	}
}

func TestRecorderHashesIdempotent(t *testing.T) {
	r := NewRecorder()
	r.AddRow([]uint64{1, 2})
	r.AddValue(3)
	f1, n1 := r.Hashes()
	f2, n2 := r.Hashes()
	if f1 != f2 || n1 != n2 {
		t.Error("Hashes must be callable repeatedly without changing")
	}
	r.AddRow([]uint64{4})
	f3, _ := r.Hashes()
	if f3 == f1 {
		t.Error("hash did not change after more rows")
	}
}

func TestRecorderRowsSurviveArenaGrowth(t *testing.T) {
	// Row views are rebuilt from offsets, so arena reallocation while
	// recording must not corrupt earlier rows.
	r := NewRecorder()
	want := make([][]uint64, 0, 200)
	for i := 0; i < 200; i++ {
		row := []uint64{uint64(i), uint64(i * 3)}
		r.AddRow(row)
		want = append(want, row)
	}
	got := r.Rows()
	if len(got) != len(want) {
		t.Fatalf("rows = %d want %d", len(got), len(want))
	}
	for i := range want {
		if !rowsEqual(got[i], want[i]) {
			t.Fatalf("row %d = %v want %v", i, got[i], want[i])
		}
	}
	if HashMatrix(got) != HashMatrix(want) {
		t.Error("hash mismatch after growth")
	}
}

func TestObserveFrom(t *testing.T) {
	s := NewStore()
	r := NewRecorder()
	r.AddRow([]uint64{5, 6})
	h, _ := r.Hashes()
	s.ObserveFrom(0, h, r)
	s.ObserveFrom(0, h, r)
	s.ObserveFrom(1, h, r)
	if s.Unique() != 1 {
		t.Fatalf("unique = %d want 1", s.Unique())
	}
	e := s.Entries()[0]
	if e.CountByClass[0] != 2 || e.CountByClass[1] != 1 {
		t.Errorf("counts wrong: %v", e.CountByClass)
	}
	// The stored representative must not alias the recorder's arena.
	r.Reset()
	r.AddRow([]uint64{99, 99})
	if e.Rep[0][0] != 5 || e.Rep[0][1] != 6 {
		t.Errorf("representative aliases recorder arena: %v", e.Rep)
	}
}
