// Package stats implements the statistical machinery of MicroSampler's
// correlation analysis (Section V-C of the paper): contingency tables of
// snapshot-hash frequencies per secret class, Pearson's chi-squared
// statistic, Cramér's V association strength, and the chi-squared
// p-value used to validate statistical significance.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Default thresholds from the paper: Cramér's V above 0.5 is a strong
// association (Cohen), and p below 0.05 makes it statistically
// significant.
const (
	DefaultVThreshold = 0.5
	DefaultPThreshold = 0.05
)

// Table is a contingency table: rows are secret classes, columns are
// unique snapshot hashes, and cells count how often each hash was
// observed for each class.
type Table struct {
	classIdx map[uint64]int
	hashIdx  map[uint64]int
	classes  []uint64
	hashes   []uint64
	counts   [][]int
	total    int
}

// NewTable returns an empty contingency table.
func NewTable() *Table {
	return &Table{
		classIdx: make(map[uint64]int),
		hashIdx:  make(map[uint64]int),
	}
}

// Add records n observations of hash under class.
func (t *Table) Add(class, hash uint64, n int) {
	if n <= 0 {
		return
	}
	ri, ok := t.classIdx[class]
	if !ok {
		ri = len(t.classes)
		t.classIdx[class] = ri
		t.classes = append(t.classes, class)
		row := make([]int, len(t.hashes))
		t.counts = append(t.counts, row)
	}
	ci, ok := t.hashIdx[hash]
	if !ok {
		ci = len(t.hashes)
		t.hashIdx[hash] = ci
		t.hashes = append(t.hashes, hash)
		for i := range t.counts {
			t.counts[i] = append(t.counts[i], 0)
		}
	}
	t.counts[ri][ci] += n
	t.total += n
}

// Rows returns the number of classes.
func (t *Table) Rows() int { return len(t.classes) }

// Cols returns the number of unique hashes.
func (t *Table) Cols() int { return len(t.hashes) }

// N returns the total number of observations.
func (t *Table) N() int { return t.total }

// Classes returns the class labels in insertion order.
func (t *Table) Classes() []uint64 {
	out := make([]uint64, len(t.classes))
	copy(out, t.classes)
	return out
}

// Count returns the cell count for (class, hash).
func (t *Table) Count(class, hash uint64) int {
	ri, ok1 := t.classIdx[class]
	ci, ok2 := t.hashIdx[hash]
	if !ok1 || !ok2 {
		return 0
	}
	return t.counts[ri][ci]
}

// ChiSquared computes Pearson's chi-squared statistic (Eq. 3/4 of the
// paper) and its degrees of freedom.
func (t *Table) ChiSquared() (chi2 float64, df int) {
	r, k := t.Rows(), t.Cols()
	if r < 2 || k < 2 || t.total == 0 {
		return 0, 0
	}
	rowSum := make([]float64, r)
	colSum := make([]float64, k)
	for i := 0; i < r; i++ {
		for j := 0; j < k; j++ {
			rowSum[i] += float64(t.counts[i][j])
			colSum[j] += float64(t.counts[i][j])
		}
	}
	n := float64(t.total)
	for i := 0; i < r; i++ {
		for j := 0; j < k; j++ {
			expected := rowSum[i] * colSum[j] / n
			if expected == 0 {
				continue
			}
			d := float64(t.counts[i][j]) - expected
			chi2 += d * d / expected
		}
	}
	return chi2, (r - 1) * (k - 1)
}

// CramersV computes Cramér's V (Eq. 2 of the paper): the association
// strength between class and snapshot hash, in [0, 1].
func (t *Table) CramersV() float64 {
	r, k := t.Rows(), t.Cols()
	if r < 2 || k < 2 || t.total == 0 {
		return 0
	}
	chi2, _ := t.ChiSquared()
	m := float64(min(r, k) - 1)
	v := math.Sqrt(chi2 / (float64(t.total) * m))
	if v > 1 {
		v = 1
	}
	return v
}

// CramersVCorrected computes the bias-corrected Cramér's V of Bergsma
// (2013), which compensates the upward bias of the plain estimator for
// tables with many cells relative to the sample size.
func (t *Table) CramersVCorrected() float64 {
	r, k := t.Rows(), t.Cols()
	if r < 2 || k < 2 || t.total == 0 {
		return 0
	}
	chi2, _ := t.ChiSquared()
	n := float64(t.total)
	phi2 := chi2 / n
	rf, kf := float64(r), float64(k)
	phi2c := phi2 - (rf-1)*(kf-1)/(n-1)
	if phi2c < 0 {
		phi2c = 0
	}
	rc := rf - (rf-1)*(rf-1)/(n-1)
	kc := kf - (kf-1)*(kf-1)/(n-1)
	m := math.Min(rc, kc) - 1
	if m <= 0 {
		return 0
	}
	v := math.Sqrt(phi2c / m)
	if v > 1 {
		v = 1
	}
	return v
}

// MutualInformation computes the empirical mutual information (in bits)
// between class and snapshot hash — the leakage metric used by
// MicroWalk [56], included for cross-tool comparison. It is bounded by
// min(H(class), H(hash)).
func (t *Table) MutualInformation() float64 {
	if t.total == 0 {
		return 0
	}
	n := float64(t.total)
	r, k := t.Rows(), t.Cols()
	rowSum := make([]float64, r)
	colSum := make([]float64, k)
	for i := 0; i < r; i++ {
		for j := 0; j < k; j++ {
			rowSum[i] += float64(t.counts[i][j])
			colSum[j] += float64(t.counts[i][j])
		}
	}
	mi := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < k; j++ {
			c := float64(t.counts[i][j])
			if c == 0 {
				continue
			}
			pxy := c / n
			mi += pxy * math.Log2(pxy*n*n/(rowSum[i]*colSum[j]))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// Association is the complete statistical verdict for one
// microarchitectural unit.
type Association struct {
	V          float64 // Cramér's V
	VCorrected float64 // bias-corrected Cramér's V (Bergsma)
	P          float64 // chi-squared p-value
	MI         float64 // mutual information in bits (MicroWalk's metric)
	Chi2       float64
	DF         int
	N          int // observations
	Rows       int // classes
	Cols       int // unique hashes
}

// Analyze computes the full association summary of the table.
func (t *Table) Analyze() Association {
	chi2, df := t.ChiSquared()
	return Association{
		V:          t.CramersV(),
		VCorrected: t.CramersVCorrected(),
		P:          PValue(chi2, df),
		MI:         t.MutualInformation(),
		Chi2:       chi2,
		DF:         df,
		N:          t.total,
		Rows:       t.Rows(),
		Cols:       t.Cols(),
	}
}

// Leaky applies the paper's verdict rule: a strong association (V above
// the threshold) that is statistically significant (p below threshold).
func (a Association) Leaky() bool {
	return a.V > DefaultVThreshold && a.P < DefaultPThreshold
}

// Significant reports whether the association is statistically
// significant at the default level.
func (a Association) Significant() bool { return a.P < DefaultPThreshold }

// MaskedV returns Cramér's V masked by significance: the value plotted
// in the paper-style bar charts (insignificant correlations plot as 0).
func (a Association) MaskedV() float64 {
	if !a.Significant() {
		return 0
	}
	return a.V
}

func (a Association) String() string {
	return fmt.Sprintf("V=%.3f p=%.3g (chi2=%.2f df=%d n=%d)", a.V, a.P, a.Chi2, a.DF, a.N)
}

// PValue returns the probability of observing a chi-squared statistic at
// least as large under the null hypothesis of independence: the upper
// regularised incomplete gamma function Q(df/2, chi2/2).
func PValue(chi2 float64, df int) float64 {
	if df <= 0 || chi2 <= 0 {
		return 1
	}
	return gammaQ(float64(df)/2, chi2/2)
}

// gammaQ computes the upper regularised incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a), following the series/continued-fraction split
// of Numerical Recipes.
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return 1
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinued(a, x)
}

// gammaPSeries evaluates P(a, x) by its power series.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinued evaluates Q(a, x) by the Lentz continued fraction.
func gammaQContinued(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion: the plausible range of the true success rate
// after observing successes out of trials, at the confidence level
// implied by the normal quantile z (z = 1.96 for 95%). Unlike the
// normal approximation it behaves sensibly at the extremes — zero
// observed failures still yield a nonzero upper bound — which is what
// the detection-quality harness reports for its false-positive and
// false-negative rates.
func WilsonInterval(successes, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := p + z2/(2*n)
	margin := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Render formats the table for human inspection, columns sorted by
// total frequency (most common hash first), capped at maxCols.
func (t *Table) Render(maxCols int) string {
	if t.total == 0 {
		return "(empty contingency table)\n"
	}
	type col struct {
		hash  uint64
		total int
		idx   int
	}
	cols := make([]col, t.Cols())
	for j := range cols {
		sum := 0
		for i := range t.counts {
			sum += t.counts[i][j]
		}
		cols[j] = col{hash: t.hashes[j], total: sum, idx: j}
	}
	sort.Slice(cols, func(i, j int) bool {
		if cols[i].total != cols[j].total {
			return cols[i].total > cols[j].total
		}
		return cols[i].hash < cols[j].hash
	})
	if maxCols > 0 && len(cols) > maxCols {
		cols = cols[:maxCols]
	}
	var b []byte
	b = append(b, fmt.Sprintf("%-12s", "class")...)
	for _, cl := range cols {
		b = append(b, fmt.Sprintf(" %16s", fmt.Sprintf("hash-%04x", cl.hash&0xFFFF))...)
	}
	b = append(b, '\n')
	order := make([]int, t.Rows())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return t.classes[order[i]] < t.classes[order[j]] })
	for _, ri := range order {
		b = append(b, fmt.Sprintf("%-12d", t.classes[ri])...)
		for _, cl := range cols {
			b = append(b, fmt.Sprintf(" %16d", t.counts[ri][cl.idx])...)
		}
		b = append(b, '\n')
	}
	return string(b)
}
