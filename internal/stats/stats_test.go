package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPerfectAssociation(t *testing.T) {
	tb := NewTable()
	tb.Add(0, 0xAAAA, 100)
	tb.Add(1, 0xBBBB, 100)
	a := tb.Analyze()
	if math.Abs(a.V-1) > 1e-9 {
		t.Errorf("V = %v want 1", a.V)
	}
	if a.P > 1e-10 {
		t.Errorf("p = %v want ~0", a.P)
	}
	if !a.Leaky() || !a.Significant() {
		t.Error("perfect association should be leaky and significant")
	}
	if a.MaskedV() != a.V {
		t.Error("MaskedV should pass through significant V")
	}
}

func TestNoAssociationSingleColumn(t *testing.T) {
	tb := NewTable()
	tb.Add(0, 0xAAAA, 100)
	tb.Add(1, 0xAAAA, 100)
	a := tb.Analyze()
	if a.V != 0 {
		t.Errorf("V = %v want 0", a.V)
	}
	if a.P != 1 {
		t.Errorf("p = %v want 1", a.P)
	}
	if a.Leaky() {
		t.Error("identical snapshots must not be leaky")
	}
}

func TestIndependentDistribution(t *testing.T) {
	// Both classes draw hashes from the same distribution: V near 0.
	tb := NewTable()
	const seed = 42
	t.Logf("rng seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	hashes := []uint64{1, 2, 3, 4}
	for i := 0; i < 4000; i++ {
		tb.Add(uint64(i%2), hashes[rng.Intn(len(hashes))], 1)
	}
	a := tb.Analyze()
	if a.V > 0.1 {
		t.Errorf("independent data: V = %v too high", a.V)
	}
	if a.Leaky() {
		t.Error("independent data flagged leaky")
	}
}

func TestAllUniqueHashesInsignificant(t *testing.T) {
	// The paper's false-positive scenario: every snapshot hashes
	// uniquely, V computes to 1 but the p-value must reject it.
	tb := NewTable()
	for i := 0; i < 200; i++ {
		tb.Add(uint64(i%2), uint64(0x1000+i), 1)
	}
	a := tb.Analyze()
	if a.V < 0.99 {
		t.Errorf("V = %v want ~1", a.V)
	}
	if a.Significant() {
		t.Errorf("all-unique hashes must be insignificant, p = %v", a.P)
	}
	if a.Leaky() {
		t.Error("must not be flagged leaky")
	}
	if a.MaskedV() != 0 {
		t.Errorf("MaskedV = %v want 0", a.MaskedV())
	}
}

func TestPartialAssociation(t *testing.T) {
	// Skewed but overlapping distributions: 0 < V < 1 and significant
	// with enough samples.
	tb := NewTable()
	tb.Add(0, 1, 80)
	tb.Add(0, 2, 20)
	tb.Add(1, 1, 20)
	tb.Add(1, 2, 80)
	a := tb.Analyze()
	if a.V <= 0.3 || a.V >= 0.9 {
		t.Errorf("V = %v want mid-range", a.V)
	}
	if !a.Significant() {
		t.Errorf("p = %v should be significant", a.P)
	}
}

func TestChiSquaredKnownValue(t *testing.T) {
	// Hand-computed 2x2 example: [[10, 20], [20, 10]].
	tb := NewTable()
	tb.Add(0, 1, 10)
	tb.Add(0, 2, 20)
	tb.Add(1, 1, 20)
	tb.Add(1, 2, 10)
	chi2, df := tb.ChiSquared()
	// Expected cells are all 15; chi2 = 4 * (5^2/15) = 6.6667.
	if math.Abs(chi2-20.0/3.0) > 1e-9 {
		t.Errorf("chi2 = %v want %v", chi2, 20.0/3.0)
	}
	if df != 1 {
		t.Errorf("df = %d want 1", df)
	}
	v := tb.CramersV()
	want := math.Sqrt(20.0 / 3.0 / 60.0)
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("V = %v want %v", v, want)
	}
}

func TestPValueReferencePoints(t *testing.T) {
	// Reference quantiles of the chi-squared distribution.
	tests := []struct {
		chi2 float64
		df   int
		want float64
		tol  float64
	}{
		{3.841, 1, 0.05, 0.001},
		{6.635, 1, 0.01, 0.001},
		{5.991, 2, 0.05, 0.001},
		{18.307, 10, 0.05, 0.001},
		{0, 1, 1, 0},
		{1000, 1, 0, 1e-9},
	}
	for _, tt := range tests {
		got := PValue(tt.chi2, tt.df)
		if math.Abs(got-tt.want) > tt.tol {
			t.Errorf("PValue(%v, %d) = %v want %v", tt.chi2, tt.df, got, tt.want)
		}
	}
}

func TestPValueMonotonic(t *testing.T) {
	f := func(raw uint16, dfRaw uint8) bool {
		chi2 := float64(raw) / 100
		df := int(dfRaw)%20 + 1
		p1 := PValue(chi2, df)
		p2 := PValue(chi2+1, df)
		return p2 <= p1+1e-12 && p1 >= 0 && p1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaQAgainstErfc(t *testing.T) {
	// For df=1, the chi-squared survival function equals erfc(sqrt(x/2)).
	for _, x := range []float64{0.1, 0.5, 1, 2, 3.84, 5, 10, 20} {
		got := PValue(x, 1)
		want := math.Erfc(math.Sqrt(x / 2))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("PValue(%v,1) = %v want erfc %v", x, got, want)
		}
	}
}

func TestTableAccessors(t *testing.T) {
	tb := NewTable()
	tb.Add(7, 100, 3)
	tb.Add(9, 100, 2)
	tb.Add(7, 200, 1)
	tb.Add(7, 100, 0)  // no-op
	tb.Add(7, 100, -5) // no-op
	if tb.Rows() != 2 || tb.Cols() != 2 || tb.N() != 6 {
		t.Errorf("dims wrong: %dx%d n=%d", tb.Rows(), tb.Cols(), tb.N())
	}
	if tb.Count(7, 100) != 3 || tb.Count(9, 200) != 0 || tb.Count(1, 1) != 0 {
		t.Error("counts wrong")
	}
	cls := tb.Classes()
	if len(cls) != 2 || cls[0] != 7 || cls[1] != 9 {
		t.Errorf("classes = %v", cls)
	}
}

func TestRender(t *testing.T) {
	tb := NewTable()
	tb.Add(0, 0xAB, 234)
	tb.Add(1, 0xAB, 256)
	tb.Add(0, 0xCD, 131)
	tb.Add(1, 0xCD, 115)
	out := tb.Render(10)
	if !strings.Contains(out, "234") || !strings.Contains(out, "256") {
		t.Errorf("render missing counts:\n%s", out)
	}
	if NewTable().Render(5) == "" {
		t.Error("empty table should render a placeholder")
	}
}

func TestMutualInformation(t *testing.T) {
	// Perfect association between two balanced classes: MI = 1 bit.
	tb := NewTable()
	tb.Add(0, 1, 100)
	tb.Add(1, 2, 100)
	if mi := tb.MutualInformation(); math.Abs(mi-1) > 1e-9 {
		t.Errorf("perfect 2-class MI = %v want 1 bit", mi)
	}
	// Independence: MI = 0.
	tb2 := NewTable()
	tb2.Add(0, 1, 50)
	tb2.Add(0, 2, 50)
	tb2.Add(1, 1, 50)
	tb2.Add(1, 2, 50)
	if mi := tb2.MutualInformation(); math.Abs(mi) > 1e-9 {
		t.Errorf("independent MI = %v want 0", mi)
	}
	// Four balanced classes, perfectly separated: 2 bits.
	tb4 := NewTable()
	for c := uint64(0); c < 4; c++ {
		tb4.Add(c, 100+c, 25)
	}
	if mi := tb4.MutualInformation(); math.Abs(mi-2) > 1e-9 {
		t.Errorf("4-class MI = %v want 2 bits", mi)
	}
	if NewTable().MutualInformation() != 0 {
		t.Error("empty table MI should be 0")
	}
}

func TestCramersVCorrected(t *testing.T) {
	// Perfect association with ample samples: correction barely moves V.
	tb := NewTable()
	tb.Add(0, 1, 500)
	tb.Add(1, 2, 500)
	if vc := tb.CramersVCorrected(); vc < 0.99 {
		t.Errorf("corrected V = %v want ~1", vc)
	}
	// The all-unique false-positive scenario: plain V is 1 but the
	// corrected estimator collapses toward 0.
	uniq := NewTable()
	for i := 0; i < 100; i++ {
		uniq.Add(uint64(i%2), uint64(1000+i), 1)
	}
	if v := uniq.CramersV(); v < 0.99 {
		t.Fatalf("plain V = %v want ~1", v)
	}
	if vc := uniq.CramersVCorrected(); vc > 0.35 {
		t.Errorf("corrected V = %v should collapse for all-unique hashes", vc)
	}
	if NewTable().CramersVCorrected() != 0 {
		t.Error("empty table corrected V should be 0")
	}
}

func TestAnalyzeIncludesAllMetrics(t *testing.T) {
	tb := NewTable()
	tb.Add(0, 1, 80)
	tb.Add(0, 2, 20)
	tb.Add(1, 1, 20)
	tb.Add(1, 2, 80)
	a := tb.Analyze()
	if a.MI <= 0 || a.MI > 1 {
		t.Errorf("MI = %v out of range", a.MI)
	}
	if a.VCorrected <= 0 || a.VCorrected > a.V+1e-9 {
		t.Errorf("VCorrected = %v vs V = %v", a.VCorrected, a.V)
	}
}

func TestEmptyTable(t *testing.T) {
	a := NewTable().Analyze()
	if a.V != 0 || a.P != 1 || a.Leaky() {
		t.Errorf("empty table: %+v", a)
	}
}

// TestInvarianceProperties checks structural invariants of the
// statistics with randomized tables: V and p are invariant under class
// relabeling and under permuting the order in which cells are added.
func TestInvarianceProperties(t *testing.T) {
	const seed = 17
	t.Logf("rng seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 100; trial++ {
		r := rng.Intn(3) + 2
		k := rng.Intn(5) + 2
		type cell struct {
			class, hash uint64
			n           int
		}
		var cells []cell
		for i := 0; i < r; i++ {
			for j := 0; j < k; j++ {
				if n := rng.Intn(20); n > 0 {
					cells = append(cells, cell{uint64(i), uint64(100 + j), n})
				}
			}
		}
		if len(cells) == 0 {
			continue
		}
		build := func(relabel func(uint64) uint64, order []int) Association {
			tb := NewTable()
			for _, idx := range order {
				c := cells[idx]
				tb.Add(relabel(c.class), c.hash, c.n)
			}
			return tb.Analyze()
		}
		identity := make([]int, len(cells))
		for i := range identity {
			identity[i] = i
		}
		base := build(func(c uint64) uint64 { return c }, identity)

		// Class relabeling.
		relabeled := build(func(c uint64) uint64 { return c + 77 }, identity)
		if math.Abs(base.V-relabeled.V) > 1e-12 || math.Abs(base.P-relabeled.P) > 1e-12 {
			t.Fatalf("trial %d: relabeling changed stats: %+v vs %+v",
				trial, base, relabeled)
		}

		// Insertion-order permutation.
		perm := rng.Perm(len(cells))
		permuted := build(func(c uint64) uint64 { return c }, perm)
		if math.Abs(base.V-permuted.V) > 1e-12 || math.Abs(base.Chi2-permuted.Chi2) > 1e-9 {
			t.Fatalf("trial %d: insertion order changed stats", trial)
		}

		// Range invariants.
		if base.V < 0 || base.V > 1 || base.P < 0 || base.P > 1 {
			t.Fatalf("trial %d: out-of-range stats %+v", trial, base)
		}
		if base.MI < 0 {
			t.Fatalf("trial %d: negative MI", trial)
		}
	}
}

// TestDegenerateTables pins the behaviour of contingency tables with
// zero degrees of freedom — single class, single hash, empty — which a
// verification produces whenever a unit never changes state or a
// workload has one secret class. The pinned contract: chi-squared and V
// are 0, the p-value is 1, and the verdict is never leaky. A refactor
// that makes any of these NaN or significant is a regression.
func TestDegenerateTables(t *testing.T) {
	cases := []struct {
		name string
		fill func(tb *Table)
	}{
		{"empty", func(tb *Table) {}},
		{"single class, many hashes", func(tb *Table) {
			for h := uint64(0); h < 10; h++ {
				tb.Add(7, h, 3)
			}
		}},
		{"single hash, many classes", func(tb *Table) {
			for c := uint64(0); c < 10; c++ {
				tb.Add(c, 0xABCD, 5)
			}
		}},
		{"single cell", func(tb *Table) { tb.Add(1, 2, 1000) }},
		{"all-identical snapshots two classes", func(tb *Table) {
			tb.Add(0, 0xFEED, 500)
			tb.Add(1, 0xFEED, 500)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := NewTable()
			tc.fill(tb)
			chi2, df := tb.ChiSquared()
			if chi2 != 0 || df != 0 {
				t.Errorf("chi2=%v df=%d, want 0/0", chi2, df)
			}
			a := tb.Analyze()
			if a.V != 0 || a.VCorrected != 0 {
				t.Errorf("V=%v Vc=%v, want 0", a.V, a.VCorrected)
			}
			if a.P != 1 {
				t.Errorf("p=%v, want 1", a.P)
			}
			if math.IsNaN(a.MI) || a.MI < 0 {
				t.Errorf("MI=%v, want finite >= 0", a.MI)
			}
			if a.Leaky() || a.Significant() {
				t.Error("degenerate table must not be leaky or significant")
			}
			if a.MaskedV() != 0 {
				t.Errorf("MaskedV=%v, want 0", a.MaskedV())
			}
		})
	}
}

// TestVerdictThresholdBoundary pins the verdict rule at the V = 0.5
// boundary: the inequality is strict, so an association of exactly 0.5
// — however significant — is not leaky, while anything above with a
// small p-value is. For a 2x2 table [[a,b],[b,a]], V = |a-b|/(a+b).
func TestVerdictThresholdBoundary(t *testing.T) {
	mk := func(a, b int) Association {
		tb := NewTable()
		tb.Add(0, 1, a)
		tb.Add(0, 2, b)
		tb.Add(1, 1, b)
		tb.Add(1, 2, a)
		return tb.Analyze()
	}

	// a=30, b=10: V = 20/40 = 0.5 exactly, p ~ 7.7e-6.
	at := mk(30, 10)
	if math.Abs(at.V-0.5) > 1e-12 {
		t.Fatalf("V = %v want exactly 0.5", at.V)
	}
	if !at.Significant() {
		t.Fatalf("boundary table should be highly significant, p=%v", at.P)
	}
	if at.Leaky() {
		t.Error("V exactly at the threshold must NOT be leaky (strict inequality)")
	}

	// a=31, b=9: V = 22/40 = 0.55, clears the threshold.
	above := mk(31, 9)
	if !above.Leaky() {
		t.Errorf("V=%v p=%v just above the threshold must be leaky", above.V, above.P)
	}

	// a=1, b=0: V = 1 but n = 2 — perfect association with no
	// statistical support stays non-leaky via the p-value guard.
	tiny := mk(1, 0)
	if tiny.V != 1 {
		t.Errorf("tiny table V = %v want 1", tiny.V)
	}
	if tiny.Significant() || tiny.Leaky() {
		t.Errorf("n=2 association must not be significant (p=%v)", tiny.P)
	}
	if tiny.MaskedV() != 0 {
		t.Errorf("insignificant V must mask to 0, got %v", tiny.MaskedV())
	}
}

// TestWilsonInterval checks the Wilson score interval against known
// reference values and its structural properties at the extremes.
func TestWilsonInterval(t *testing.T) {
	// Reference: 0/55 successes at 95% -> upper bound 3/(n+z^2)-ish;
	// the classical value for 0/55 is about 0.0654.
	lo, hi := WilsonInterval(0, 55, 1.96)
	if lo != 0 {
		t.Errorf("0 successes: lo = %v want 0", lo)
	}
	if math.Abs(hi-0.0654) > 0.002 {
		t.Errorf("0/55 upper bound = %v want ~0.0654", hi)
	}

	// Symmetry: k/n and (n-k)/n mirror around 1/2.
	lo1, hi1 := WilsonInterval(10, 40, 1.96)
	lo2, hi2 := WilsonInterval(30, 40, 1.96)
	if math.Abs(lo1-(1-hi2)) > 1e-12 || math.Abs(hi1-(1-lo2)) > 1e-12 {
		t.Errorf("interval not symmetric: [%v,%v] vs [%v,%v]", lo1, hi1, lo2, hi2)
	}

	// Reference value: 10/40 at 95% is approximately [0.1419, 0.4019].
	if math.Abs(lo1-0.1419) > 0.002 || math.Abs(hi1-0.4019) > 0.002 {
		t.Errorf("10/40 interval = [%v, %v] want ~[0.1419, 0.4019]", lo1, hi1)
	}

	// All successes: lower bound below 1, upper bound exactly 1-ish.
	lo3, hi3 := WilsonInterval(20, 20, 1.96)
	if lo3 >= 1 || hi3 > 1 || lo3 < 0.8 {
		t.Errorf("20/20 interval = [%v, %v]", lo3, hi3)
	}

	// Degenerate trials.
	if lo, hi := WilsonInterval(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("no trials must give the vacuous interval, got [%v, %v]", lo, hi)
	}

	// Wider confidence -> wider interval.
	lo95, hi95 := WilsonInterval(5, 50, 1.96)
	lo99, hi99 := WilsonInterval(5, 50, 2.576)
	if lo99 > lo95 || hi99 < hi95 {
		t.Errorf("99%% interval [%v,%v] must contain 95%% interval [%v,%v]",
			lo99, hi99, lo95, hi95)
	}
}
