package export

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"microsampler/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedSpans builds a deterministic little span tree: a verify root,
// two runs with execute children, and a stats stage span.
func fixedSpans() []telemetry.Span {
	base := time.Unix(100, 0).UTC()
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	return []telemetry.Span{
		{ID: 3, Parent: 2, Name: "run", Run: 0, Start: at(1), Dur: 40 * time.Millisecond},
		{ID: 4, Parent: 3, Name: "execute", Run: 0, Start: at(2), Dur: 35 * time.Millisecond},
		{ID: 5, Parent: 2, Name: "run", Run: 1, Start: at(5), Dur: 50 * time.Millisecond},
		{ID: 6, Parent: 5, Name: "execute", Run: 1, Start: at(6), Dur: 44 * time.Millisecond},
		{ID: 2, Parent: 1, Name: "simulate", Run: -1, Start: at(1), Dur: 55 * time.Millisecond},
		{ID: 7, Parent: 1, Name: "stats.unit", Run: -1, Detail: "SQ-ADDR", Start: at(60), Dur: 3 * time.Millisecond},
		{ID: 1, Parent: 0, Name: "verify", Run: -1, Start: at(0), Dur: 65 * time.Millisecond},
	}
}

func TestPerfettoGolden(t *testing.T) {
	got, err := Perfetto(fixedSpans()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("perfetto output drifted from golden (rerun with -update if intended)\ngot:\n%s", got)
	}
	// Byte determinism: a second conversion must be identical.
	again, err := Perfetto(fixedSpans()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(again, '\n')) {
		t.Error("perfetto conversion is not deterministic")
	}
}

// TestPerfettoStructure validates the trace-event invariants Perfetto's
// importer relies on: every event has a phase, complete ("X") events
// have non-negative rebased timestamps and durations, run spans sit on
// tid run+1, stage spans on tid 0, and the document round-trips as
// JSON with a traceEvents array.
func TestPerfettoStructure(t *testing.T) {
	data, err := Perfetto(fixedSpans()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("perfetto JSON does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %q has negative ts/dur: %+v", ev.Name, ev)
			}
			if run, ok := ev.Args["run"]; ok {
				if want := int(run.(float64)) + 1; ev.Tid != want {
					t.Errorf("run span %q on tid %d want %d", ev.Name, ev.Tid, want)
				}
			} else if ev.Tid != 0 {
				t.Errorf("stage span %q on tid %d want 0", ev.Name, ev.Tid)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Name == "" || ev.Pid != 1 {
			t.Errorf("malformed event %+v", ev)
		}
	}
	if complete != len(fixedSpans()) {
		t.Errorf("%d complete events, want %d", complete, len(fixedSpans()))
	}
	// process_name + pipeline thread + one thread per run (2 runs).
	if meta != 4 {
		t.Errorf("%d metadata events, want 4", meta)
	}
	// The verify root starts the trace at ts 0.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "verify" && ev.Ts != 0 {
			t.Errorf("verify root ts = %g want 0 (rebased)", ev.Ts)
		}
	}
}

// TestPerfettoFromJSONL feeds the converter the exact wire format the
// span tracer writes and checks it agrees with the in-memory path.
func TestPerfettoFromJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := telemetry.NewSpanTracer(&buf)
	root := tr.Start("verify", 0, -1)
	run := tr.Start("run", root.ID(), 0)
	run.End()
	root.End()

	fromJSONL, err := PerfettoFromJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromSpans := Perfetto(tr.Spans())
	a, err := fromJSONL.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromSpans.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// The JSONL wire format truncates to whole nanoseconds, which both
	// paths share; the rendered documents must agree byte for byte.
	if !bytes.Equal(a, b) {
		t.Errorf("JSONL and in-memory conversions disagree:\n%s\nvs\n%s", a, b)
	}

	if _, err := PerfettoFromJSONL(strings.NewReader("{bad json\n")); err == nil {
		t.Error("malformed JSONL line must fail the conversion")
	}
	empty, err := PerfettoFromJSONL(strings.NewReader("\n\n"))
	if err != nil || len(empty.TraceEvents) != 2 { // process+pipeline metadata only
		t.Errorf("blank-line stream: %v, %d events", err, len(empty.TraceEvents))
	}
}

func TestMetricsHandler(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("msd_jobs_total").Add(2)
	r.Histogram("msd_job_seconds", telemetry.LatencyBuckets()).Observe(0.5)

	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE msd_jobs_total counter", "msd_jobs_total 2",
		"# TYPE msd_job_seconds histogram", `msd_job_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
}
