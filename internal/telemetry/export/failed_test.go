package export

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"microsampler/internal/core"
	"microsampler/internal/telemetry"
)

// fixedFailedSpans models the span tree of a verification that died
// mid-flight: run 0 retried once after a stall and then the run was
// aborted, so the tree is truncated — no stats or extract stages — and
// the enclosing spans were force-ended at abort time.
func fixedFailedSpans() []telemetry.Span {
	base := time.Unix(100, 0).UTC()
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	return []telemetry.Span{
		{ID: 3, Parent: 2, Name: "run", Run: 0, Start: at(1), Dur: 30 * time.Millisecond},
		{ID: 4, Parent: 3, Name: "execute", Run: 0, Start: at(2), Dur: 28 * time.Millisecond},
		{ID: 5, Parent: 2, Name: "run", Run: 0, Detail: "attempt 2 after stall", Start: at(32), Dur: 31 * time.Millisecond},
		{ID: 6, Parent: 5, Name: "execute", Run: 0, Start: at(33), Dur: 29 * time.Millisecond},
		{ID: 2, Parent: 1, Name: "simulate", Run: -1, Start: at(1), Dur: 63 * time.Millisecond},
		{ID: 7, Parent: 1, Name: "merge", Run: -1, Start: at(64), Dur: time.Millisecond},
		{ID: 1, Parent: 0, Name: "verify", Run: -1, Start: at(0), Dur: 65 * time.Millisecond},
	}
}

// TestPerfettoFailedGolden pins the rendering of a failure-truncated
// span tree: aborted verifications must still export byte-identically.
func TestPerfettoFailedGolden(t *testing.T) {
	got, err := Perfetto(fixedFailedSpans()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "perfetto_failed_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("failed-run perfetto drifted from golden (rerun with -update if intended)\ngot:\n%s", got)
	}
	again, err := Perfetto(fixedFailedSpans()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(again, '\n')) {
		t.Error("failed-run perfetto conversion is not deterministic")
	}
}

// TestPerfettoFromFailedVerify drives a real verification into each
// failure mode with a live trace sink and requires the JSONL stream to
// convert into a valid trace document — the force-ended spans of an
// aborted pipeline must not corrupt the export.
func TestPerfettoFromFailedVerify(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts core.Options
	}{
		{
			name: "nonzero-exit",
			src: `
_start:
	li a0, 7
	li a7, 93
	ecall
`,
		},
		{
			name: "timeout",
			src: `
_start:
spin:
	j spin
`,
			opts: core.Options{MaxCycles: 2000},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sink bytes.Buffer
			opts := tc.opts
			opts.TraceSink = &sink
			_, err := core.Verify(core.Workload{Name: tc.name, Source: tc.src}, opts)
			if err == nil {
				t.Fatal("want verification failure")
			}
			if sink.Len() == 0 {
				t.Fatal("failed verify produced no spans")
			}
			tr, err := PerfettoFromJSONL(bytes.NewReader(sink.Bytes()))
			if err != nil {
				t.Fatalf("failed-run span stream did not convert: %v", err)
			}
			data, err := tr.JSON()
			if err != nil {
				t.Fatal(err)
			}
			var doc struct {
				TraceEvents []struct {
					Name string  `json:"name"`
					Ph   string  `json:"ph"`
					Ts   float64 `json:"ts"`
					Dur  float64 `json:"dur"`
				} `json:"traceEvents"`
			}
			if err := json.Unmarshal(data, &doc); err != nil {
				t.Fatalf("invalid trace JSON: %v", err)
			}
			var sawVerify bool
			for _, ev := range doc.TraceEvents {
				if ev.Ph == "X" && (ev.Ts < 0 || ev.Dur < 0) {
					t.Errorf("event %q has negative time: ts=%g dur=%g", ev.Name, ev.Ts, ev.Dur)
				}
				if ev.Name == "verify" {
					sawVerify = true
				}
			}
			if !sawVerify {
				t.Error("root verify span missing — abort did not end the enclosing spans")
			}
		})
	}
}
