package export

import (
	"fmt"

	"microsampler/internal/sim"
)

// flightSeries enumerates the occupancy series of a flight-recorder
// frame in a fixed render order.
var flightSeries = []struct {
	name string
	get  func(f sim.FlightFrame) int
}{
	{"rob", func(f sim.FlightFrame) int { return f.ROB }},
	{"sq", func(f sim.FlightFrame) int { return f.SQ }},
	{"lq", func(f sim.FlightFrame) int { return f.LQ }},
	{"mshr", func(f sim.FlightFrame) int { return f.MSHR }},
	{"lfb", func(f sim.FlightFrame) int { return f.LFB }},
}

// FlightPerfetto converts a flight-recorder post-mortem into a
// trace-event document: one counter track per microarchitectural
// occupancy series, timestamped in simulated cycles (1 cycle = 1 µs on
// the Perfetto timeline), plus an instant event marking the cycle the
// run died at. The rendering is deterministic for a given dump.
func FlightPerfetto(d *sim.FlightDump) *PerfettoTrace {
	tr := &PerfettoTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"source":  "microsampler flight recorder",
			"config":  d.Config,
			"cycle":   fmt.Sprintf("%d", d.Cycle),
			"fetchPC": fmt.Sprintf("%#x", d.FetchPC),
		},
		TraceEvents: make([]TraceEvent, 0, len(d.Frames)*len(flightSeries)+3),
	}
	tr.TraceEvents = append(tr.TraceEvents,
		TraceEvent{Name: "process_name", Ph: "M", Pid: perfettoPid, Tid: 0,
			Args: map[string]any{"name": "microsampler flight recorder"}},
		TraceEvent{Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: 0,
			Args: map[string]any{"name": "occupancy"}})
	for _, f := range d.Frames {
		ts := float64(f.Cycle)
		for _, s := range flightSeries {
			tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
				Name: s.name, Cat: "occupancy", Ph: "C",
				Ts: ts, Pid: perfettoPid, Tid: 0,
				Args: map[string]any{"value": s.get(f)},
			})
		}
	}
	tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
		Name: "run ended", Cat: "postmortem", Ph: "i",
		Ts: float64(d.Cycle), Pid: perfettoPid, Tid: 0,
		Args: map[string]any{
			"cycle":   d.Cycle,
			"fetchPC": fmt.Sprintf("%#x", d.FetchPC),
		},
	})
	return tr
}
