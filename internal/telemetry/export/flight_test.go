package export

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"microsampler/internal/sim"
)

// fixedDump builds a deterministic little post-mortem: four frames of
// draining occupancy leading up to a stall at cycle 1000.
func fixedDump() *sim.FlightDump {
	return &sim.FlightDump{
		Config:  "SmallBoom",
		Cycle:   1000,
		FetchPC: 0x1148,
		Frames: []sim.FlightFrame{
			{Cycle: 997, FetchPC: 0x1140, Retired: 380, ROB: 12, SQ: 3, LQ: 2, MSHR: 1, LFB: 1},
			{Cycle: 998, FetchPC: 0x1144, Retired: 381, ROB: 14, SQ: 4, LQ: 2, MSHR: 2, LFB: 1},
			{Cycle: 999, FetchPC: 0x1148, Retired: 381, ROB: 16, SQ: 4, LQ: 3, MSHR: 2, LFB: 2},
			{Cycle: 1000, FetchPC: 0x1148, Retired: 381, ROB: 16, SQ: 4, LQ: 3, MSHR: 2, LFB: 2},
		},
	}
}

func TestFlightPerfettoGolden(t *testing.T) {
	got, err := FlightPerfetto(fixedDump()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "flight_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("flight perfetto drifted from golden (rerun with -update if intended)\ngot:\n%s", got)
	}
	again, err := FlightPerfetto(fixedDump()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(again, '\n')) {
		t.Error("flight perfetto conversion is not deterministic")
	}
}

func TestFlightPerfettoStructure(t *testing.T) {
	data, err := FlightPerfetto(fixedDump()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	counters := map[string]int{}
	var instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "C":
			counters[ev.Name]++
			if _, ok := ev.Args["value"]; !ok {
				t.Errorf("counter %q at ts=%g has no value arg", ev.Name, ev.Ts)
			}
		case "i":
			instants++
			if ev.Ts != 1000 {
				t.Errorf("instant at ts=%g want 1000 (the failure cycle)", ev.Ts)
			}
		case "M":
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	for _, name := range []string{"rob", "sq", "lq", "mshr", "lfb"} {
		if counters[name] != 4 {
			t.Errorf("series %q has %d samples want 4", name, counters[name])
		}
	}
	if instants != 1 {
		t.Errorf("%d instant events want 1", instants)
	}
	if doc.OtherData["config"] != "SmallBoom" || doc.OtherData["fetchPC"] != "0x1148" {
		t.Errorf("otherData = %v", doc.OtherData)
	}
}

func TestFlightPerfettoEmptyDump(t *testing.T) {
	tr := FlightPerfetto(&sim.FlightDump{Config: "SmallBoom"})
	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("empty dump renders invalid JSON: %v", err)
	}
}
