// Package export turns the in-process telemetry of PR 1 — the metrics
// registry and the span tracer — into standard, tool-consumable
// surfaces: Prometheus text exposition over HTTP and Perfetto/Chrome
// trace-event JSON that opens directly in ui.perfetto.dev. It is the
// serving boundary between the pipeline's instrumentation and the
// outside world; the msd daemon and the CLI both render through it.
package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"microsampler/internal/telemetry"
)

// TraceEvent is one entry of the Chrome trace-event format (the JSON
// dialect Perfetto's legacy importer accepts). Ts and Dur are in
// microseconds, relative to the earliest span of the trace.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// PerfettoTrace is a complete trace document: load it in
// ui.perfetto.dev or chrome://tracing as-is.
type PerfettoTrace struct {
	TraceEvents     []TraceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// JSON marshals the trace. Field order is fixed by the struct layout
// and events are pre-sorted, so the output is deterministic for a
// given span set.
func (p *PerfettoTrace) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", " ")
}

const perfettoPid = 1

// pipeline-stage spans (run < 0) render on tid 0; run spans render on
// tid run+1 so each simulation run gets its own track.
func perfettoTid(run int) int {
	if run < 0 {
		return 0
	}
	return run + 1
}

// Perfetto converts a finished span tree (core.Report.Spans) into a
// trace-event document. Timestamps are rebased to the earliest span so
// traces start at t=0, and events are sorted by (start, id) so the
// output bytes do not depend on the order runs happened to finish in.
func Perfetto(spans []telemetry.Span) *PerfettoTrace {
	rows := make([]spanRow, 0, len(spans))
	for _, s := range spans {
		rows = append(rows, spanRow{
			id:      s.ID,
			parent:  s.Parent,
			name:    s.Name,
			run:     s.Run,
			detail:  s.Detail,
			startNs: s.Start.UnixNano(),
			durNs:   s.Dur.Nanoseconds(),
		})
	}
	return fromRows(rows)
}

// spanJSONL is the wire form emitted by telemetry.SpanTracer on its
// JSONL sink (Options.TraceSink / microsampler -trace-out).
type spanJSONL struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent"`
	Name    string `json:"name"`
	Run     *int   `json:"run"`
	Detail  string `json:"detail"`
	StartNs int64  `json:"startNs"`
	DurNs   int64  `json:"durNs"`
}

// PerfettoFromJSONL converts a span JSONL stream (the format written
// by microsampler -trace-out and Options.TraceSink) into a trace-event
// document. Blank lines are skipped; a malformed line fails the whole
// conversion with its line number.
func PerfettoFromJSONL(r io.Reader) (*PerfettoTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var rows []spanRow
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var s spanJSONL
		if err := json.Unmarshal(line, &s); err != nil {
			return nil, fmt.Errorf("span JSONL line %d: %w", lineNo, err)
		}
		run := -1
		if s.Run != nil {
			run = *s.Run
		}
		rows = append(rows, spanRow{
			id:      s.ID,
			parent:  s.Parent,
			name:    s.Name,
			run:     run,
			detail:  s.Detail,
			startNs: s.StartNs,
			durNs:   s.DurNs,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fromRows(rows), nil
}

type spanRow struct {
	id, parent   uint64
	name, detail string
	run          int
	startNs      int64
	durNs        int64
}

func fromRows(rows []spanRow) *PerfettoTrace {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].startNs != rows[j].startNs {
			return rows[i].startNs < rows[j].startNs
		}
		return rows[i].id < rows[j].id
	})
	var minStart int64
	if len(rows) > 0 {
		minStart = rows[0].startNs
	}

	tr := &PerfettoTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"source": "microsampler span tracer"},
		TraceEvents:     make([]TraceEvent, 0, len(rows)+2),
	}

	// Name the process and the pipeline track, then one track per run
	// index seen, in sorted order (metadata events, ph "M").
	meta := func(name string, tid int, value string) TraceEvent {
		return TraceEvent{
			Name: name, Ph: "M", Pid: perfettoPid, Tid: tid,
			Args: map[string]any{"name": value},
		}
	}
	tr.TraceEvents = append(tr.TraceEvents,
		meta("process_name", 0, "microsampler verify"),
		meta("thread_name", 0, "pipeline"))
	runs := map[int]bool{}
	for _, r := range rows {
		if r.run >= 0 && !runs[r.run] {
			runs[r.run] = true
		}
	}
	sortedRuns := make([]int, 0, len(runs))
	for r := range runs {
		sortedRuns = append(sortedRuns, r)
	}
	sort.Ints(sortedRuns)
	for _, r := range sortedRuns {
		tr.TraceEvents = append(tr.TraceEvents,
			meta("thread_name", perfettoTid(r), fmt.Sprintf("run %d", r)))
	}

	for _, r := range rows {
		ev := TraceEvent{
			Name: r.name,
			Cat:  "pipeline",
			Ph:   "X",
			Ts:   float64(r.startNs-minStart) / 1e3,
			Dur:  float64(r.durNs) / 1e3,
			Pid:  perfettoPid,
			Tid:  perfettoTid(r.run),
			Args: map[string]any{"id": r.id},
		}
		if r.run >= 0 {
			ev.Cat = "run"
			ev.Args["run"] = r.run
		}
		if r.parent != 0 {
			ev.Args["parent"] = r.parent
		}
		if r.detail != "" {
			ev.Args["detail"] = r.detail
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}
	return tr
}
