package export

import (
	"net/http"

	"microsampler/internal/telemetry"
)

// PrometheusContentType is the exposition-format content type scrapers
// negotiate for (text format version 0.0.4).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// PrometheusText renders a registry snapshot in the Prometheus text
// exposition format: # HELP/# TYPE headers, sanitised metric names,
// and histograms expanded into cumulative _bucket/_sum/_count series.
// The heavy lifting lives on telemetry.Snapshot so the registry's own
// RenderText shares the exact same output.
func PrometheusText(r *telemetry.Registry) string {
	return r.Snapshot().Prometheus()
}

// MetricsHandler serves a registry as a Prometheus scrape endpoint
// (the msd daemon mounts it at /metrics). The snapshot is taken per
// request, so long-lived scrapers always see current values.
func MetricsHandler(r *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		_, _ = w.Write([]byte(PrometheusText(r)))
	})
}
