// Package telemetry is the observability layer of the MicroSampler
// pipeline: a zero-dependency metrics registry (counters, gauges and
// fixed-bucket histograms, goroutine-safe and allocation-free on the hot
// path) plus structured span tracing for the Verify pipeline stages.
//
// The registry renders as aligned text for terminals and as JSON for
// machine consumers, and can publish itself through the standard
// library's expvar endpoint. Every future performance PR reports against
// these surfaces (the paper's Table VI stage breakdown generalised to
// per-run distributions and simulator event counters).
package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can move in either direction.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetMax raises the gauge to v if v is greater than the current value
// (high-water-mark semantics).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets hold counts of
// observations less than or equal to each upper bound; observations
// above the last bound land in an implicit +Inf bucket. Observe is
// lock-free and allocation-free.
type Histogram struct {
	bounds []float64 // sorted upper bounds
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if math.Float64frombits(old) <= v {
			break
		}
		if h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the average observation, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.min.Load())
}

// Max returns the largest observation, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts: it returns the upper bound of the bucket holding the
// q-quantile observation, clamped to the observed min/max. The estimate
// is exact when every observation in the target bucket equals its bound.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			var b float64
			if i < len(h.bounds) {
				b = h.bounds[i]
			} else {
				b = h.Max()
			}
			if b > h.Max() {
				b = h.Max()
			}
			if b < h.Min() {
				b = h.Min()
			}
			return b
		}
	}
	return h.Max()
}

// Buckets returns the bucket upper bounds and their counts; the final
// entry of counts is the +Inf overflow bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// LatencyBuckets is an exponential bucket layout for durations in
// seconds, from 100µs to ~100s.
func LatencyBuckets() []float64 {
	b := make([]float64, 0, 21)
	for v := 1e-4; v <= 110; v *= 2 {
		b = append(b, v)
	}
	return b
}

// SizeBuckets is an exponential bucket layout for sizes and event
// counts, from 1 to ~1M.
func SizeBuckets() []float64 {
	b := make([]float64, 0, 21)
	for v := 1.0; v <= 1<<20; v *= 4 {
		b = append(b, v)
	}
	return b
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. Lookup methods are get-or-create
// and safe for concurrent use; the returned metric handles should be
// cached by hot paths so steady-state updates take no locks.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry used when callers do not supply
// their own.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls ignore buckets).
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(buckets)
		r.histograms[name] = h
	}
	return h
}

// Reset drops every metric; mainly for tests and between-batch reuse.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
}

// HistogramSnapshot is the rendered state of one histogram. Bounds and
// BucketCounts carry the raw (non-cumulative) bucket layout so
// exporters can rebuild the full distribution (Prometheus _bucket
// series); BucketCounts has one extra trailing entry for the +Inf
// overflow bucket.
type HistogramSnapshot struct {
	Count        uint64    `json:"count"`
	Sum          float64   `json:"sum"`
	Min          float64   `json:"min"`
	Mean         float64   `json:"mean"`
	P95          float64   `json:"p95"`
	Max          float64   `json:"max"`
	Bounds       []float64 `json:"bounds,omitempty"`
	BucketCounts []uint64  `json:"bucketCounts,omitempty"`
}

// Snapshot is a point-in-time copy of a registry's values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		bounds, counts := h.Buckets()
		s.Histograms[n] = HistogramSnapshot{
			Count:        h.Count(),
			Sum:          h.Sum(),
			Min:          h.Min(),
			Mean:         h.Mean(),
			P95:          h.Quantile(0.95),
			Max:          h.Max(),
			Bounds:       bounds,
			BucketCounts: counts,
		}
	}
	return s
}

// RenderText renders the registry in the Prometheus text exposition
// format (via Snapshot.Prometheus), so the same dump a terminal shows
// is scrapeable by any Prometheus-compatible collector. Metric names
// are sanitised to the exposition alphabet; RenderSummary keeps the
// old aligned human-oriented view.
func (r *Registry) RenderText() string {
	return r.Snapshot().Prometheus()
}

// RenderSummary renders the registry as aligned, sorted terminal text:
// one line per metric, histograms condensed to n/min/mean/p95/max.
func (r *Registry) RenderSummary() string {
	s := r.Snapshot()
	var b strings.Builder
	b.WriteString("metrics:\n")
	for _, n := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "  %-44s %d\n", n, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "  %-44s %g\n", n, s.Gauges[n])
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "  %-44s n=%d min=%g mean=%g p95=%g max=%g\n",
			n, h.Count, h.Min, h.Mean, h.P95, h.Max)
	}
	return b.String()
}

// RenderJSON renders the registry snapshot as indented JSON.
func (r *Registry) RenderJSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// PublishExpvar exposes the registry under the given name on the
// standard expvar endpoint (/debug/vars). Publishing the same name
// twice is a no-op, so it is safe to call per run.
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

var publishMu sync.Mutex

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
