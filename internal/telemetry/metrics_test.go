package telemetry

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d want 5", got)
	}
	if r.Counter("runs_total") != c {
		t.Error("counter lookup must return the same instance")
	}

	g := r.Gauge("ipc")
	g.Set(1.5)
	g.Add(0.25)
	if got := g.Value(); got != 1.75 {
		t.Errorf("gauge = %g want 1.75", got)
	}
	g.SetMax(1.0)
	if got := g.Value(); got != 1.75 {
		t.Errorf("SetMax lowered the gauge: %g", got)
	}
	g.SetMax(3.0)
	if got := g.Value(); got != 3.0 {
		t.Errorf("SetMax = %g want 3", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 2, 3, 7, 20} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 33.5 {
		t.Errorf("sum = %g", h.Sum())
	}
	if h.Min() != 0.5 || h.Max() != 20 {
		t.Errorf("min/max = %g/%g", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q < 2 || q > 4 {
		t.Errorf("p50 = %g want within [2,4]", q)
	}
	if q := h.Quantile(1); q != 20 {
		t.Errorf("p100 = %g want 20 (clamped to max)", q)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || len(counts) != 5 {
		t.Fatalf("buckets shape: %v %v", bounds, counts)
	}
	if counts[4] != 1 { // the 20 observation overflows
		t.Errorf("overflow bucket = %d want 1", counts[4])
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewRegistry().Histogram("empty", LatencyBuckets())
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.95) != 0 {
		t.Error("empty histogram must render zeros")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(float64(i))
				r.Histogram("h", []float64{10, 100, 1000}).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 999 {
		t.Errorf("gauge max = %g want 999", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d want 8000", got)
	}
}

func TestRenderText(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_cycles_total").Add(1234)
	r.Gauge("sim_ipc").Set(1.5)
	r.Histogram("run_seconds", LatencyBuckets()).Observe(0.25)
	out := r.RenderText()
	for _, want := range []string{
		"# TYPE sim_cycles_total counter", "sim_cycles_total 1234",
		"# TYPE sim_ipc gauge", "sim_ipc 1.5",
		"# TYPE run_seconds histogram", `run_seconds_bucket{le="+Inf"} 1`,
		"run_seconds_sum 0.25", "run_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderText missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_cycles_total").Add(1234)
	r.Histogram("run_seconds", LatencyBuckets()).Observe(0.25)
	out := r.RenderSummary()
	for _, want := range []string{"sim_cycles_total", "1234", "run_seconds", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderSummary missing %q:\n%s", want, out)
		}
	}
}

func TestRenderJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b").Set(2)
	r.Histogram("c", []float64{1}).Observe(0.5)
	data, err := r.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.Counters["a"] != 7 || snap.Gauges["b"] != 2 {
		t.Errorf("snapshot = %+v", snap)
	}
	if h := snap.Histograms["c"]; h.Count != 1 || h.Sum != 0.5 {
		t.Errorf("histogram snapshot = %+v", h)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Reset()
	if r.Counter("x").Value() != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("published_total").Add(3)
	r.PublishExpvar("microsampler-test")
	r.PublishExpvar("microsampler-test") // second publish must not panic
	v := expvar.Get("microsampler-test")
	if v == nil {
		t.Fatal("expvar not published")
	}
	if !strings.Contains(v.String(), "published_total") {
		t.Errorf("expvar output missing metric: %s", v.String())
	}
}
