package telemetry

import (
	"math"
	"strconv"
	"strings"
)

// SanitizeMetricName maps an arbitrary metric name onto the Prometheus
// metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid rune
// becomes '_', and a leading digit is prefixed with '_'. The registry
// itself accepts free-form names (per-unit counters embed unit labels
// like "trace_samples_total.SQ-ADDR"); sanitisation happens at render
// time so in-process consumers keep the readable originals.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !valid {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// splitLabels separates a trailing Prometheus label block from a
// metric name: `x{a="b"}` becomes ("x", `{a="b"}`). Producers that
// need labels (the version package's build_info gauges) embed the
// block in the free-form registry name; only the base name is
// sanitised at render time and the block is emitted verbatim, so the
// producer owns its quoting. Names without a well-formed trailing
// block are returned unchanged with no labels.
func splitLabels(name string) (base, labels string) {
	if strings.HasSuffix(name, "}") {
		if i := strings.IndexByte(name, '{'); i > 0 {
			return name[:i], name[i:]
		}
	}
	return name, ""
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip decimal, with the special values spelled +Inf,
// -Inf and NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE header per metric
// family followed by its samples, histograms expanded into cumulative
// _bucket series plus _sum and _count. Metric names are sanitised with
// SanitizeMetricName; when two names collapse onto the same sanitised
// family the headers are emitted once. Families appear in sorted
// (sanitised) name order, so the rendering is deterministic. A counter
// or gauge name carrying a trailing {...} block (see splitLabels) keeps
// it verbatim as its label set; histograms do not support embedded
// labels (they would collide with the synthesised le labels).
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	seen := make(map[string]bool)

	header := func(name, orig, typ string) {
		if seen[name] {
			return
		}
		seen[name] = true
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteString(" microsampler ")
		b.WriteString(typ)
		if orig != name {
			b.WriteString(" (source name ")
			b.WriteString(orig)
			b.WriteString(")")
		}
		b.WriteString("\n# TYPE ")
		b.WriteString(name)
		b.WriteString(" ")
		b.WriteString(typ)
		b.WriteString("\n")
	}

	for _, orig := range sortedBySanitized(s.Counters) {
		base, labels := splitLabels(orig)
		name := SanitizeMetricName(base)
		header(name, base, "counter")
		b.WriteString(name)
		b.WriteString(labels)
		b.WriteString(" ")
		b.WriteString(strconv.FormatUint(s.Counters[orig], 10))
		b.WriteString("\n")
	}
	for _, orig := range sortedBySanitized(s.Gauges) {
		base, labels := splitLabels(orig)
		name := SanitizeMetricName(base)
		header(name, base, "gauge")
		b.WriteString(name)
		b.WriteString(labels)
		b.WriteString(" ")
		b.WriteString(formatFloat(s.Gauges[orig]))
		b.WriteString("\n")
	}
	for _, orig := range sortedBySanitized(s.Histograms) {
		name := SanitizeMetricName(orig)
		h := s.Histograms[orig]
		header(name, orig, "histogram")
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.BucketCounts[i]
			b.WriteString(name)
			b.WriteString(`_bucket{le="`)
			b.WriteString(formatFloat(bound))
			b.WriteString(`"} `)
			b.WriteString(strconv.FormatUint(cum, 10))
			b.WriteString("\n")
		}
		b.WriteString(name)
		b.WriteString(`_bucket{le="+Inf"} `)
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteString("\n")
		b.WriteString(name)
		b.WriteString("_sum ")
		b.WriteString(formatFloat(h.Sum))
		b.WriteString("\n")
		b.WriteString(name)
		b.WriteString("_count ")
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteString("\n")
	}
	return b.String()
}

// sortedBySanitized returns the map keys ordered by their sanitised
// form (ties broken by the original name, for determinism).
func sortedBySanitized[M ~map[string]V, V any](m M) []string {
	keys := sortedKeys(m)
	// sortedKeys is already sorted by original name; re-sort by the
	// sanitised form, keeping the original order as tie-break (stable).
	sortStableBy(keys, func(a, bk string) bool {
		sa, sb := SanitizeMetricName(a), SanitizeMetricName(bk)
		if sa != sb {
			return sa < sb
		}
		return a < bk
	})
	return keys
}

// sortStableBy is a tiny insertion sort: key sets are small (tens of
// metrics) and this avoids pulling in sort.SliceStable's reflection on
// a hot-ish render path.
func sortStableBy(s []string, less func(a, b string) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
