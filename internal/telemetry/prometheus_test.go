package telemetry

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"verify_total":                "verify_total",
		"trace_samples_total.SQ-ADDR": "trace_samples_total_SQ_ADDR",
		"verify_stage_seconds.parse":  "verify_stage_seconds_parse",
		"ns:sub_metric":               "ns:sub_metric",
		"9lives":                      "_9lives",
		"":                            "_",
		"a b/c":                       "a_b_c",
	} {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q want %q", in, got, want)
		}
	}
	valid := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	for _, in := range []string{"trace.Ü-nit", "--", "x.y.z", "123", "_ok"} {
		if got := SanitizeMetricName(in); !valid.MatchString(got) {
			t.Errorf("SanitizeMetricName(%q) = %q is not a valid metric name", in, got)
		}
	}
}

// promSampleRe matches one exposition sample line: a valid metric name,
// an optional label set, and a float value.
var promSampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

var promHeaderRe = regexp.MustCompile(
	`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)

// TestPrometheusConformance feeds the renderer a registry with every
// metric kind (including names that need sanitising) and parses the
// output line by line against the exposition grammar, checking the
// histogram invariants: cumulative non-decreasing _bucket series, the
// +Inf bucket equal to _count, and HELP/TYPE headers preceding samples.
func TestPrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("verify_total").Add(3)
	r.Counter("trace_samples_total.SQ-ADDR").Add(41)
	r.Counter("trace_samples_total.LQ-PC").Add(7)
	r.Gauge("sim_ipc").Set(1.25)
	r.Gauge("weird gauge/name").Set(-2.5)
	h := r.Histogram("verify_stage_seconds.parse", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.004, 0.05, 0.05, 2, 30} {
		h.Observe(v)
	}

	out := r.RenderText()
	typed := map[string]string{}
	samples := map[string][]string{} // family -> sample lines (in order)
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition output", i)
		}
		if strings.HasPrefix(line, "#") {
			if !promHeaderRe.MatchString(line) {
				t.Fatalf("line %d: malformed header %q", i, line)
			}
			f := strings.Fields(line)
			if f[1] == "TYPE" {
				typed[f[2]] = f[3]
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", i, line)
		}
		name := m[1]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "histogram" {
				family = base
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("line %d: sample %q before its # TYPE header", i, line)
		}
		samples[family] = append(samples[family], line)
	}

	if typ := typed["verify_total"]; typ != "counter" {
		t.Errorf("verify_total TYPE = %q", typ)
	}
	if typ := typed["trace_samples_total_SQ_ADDR"]; typ != "counter" {
		t.Errorf("sanitised per-unit counter TYPE = %q (families: %v)", typ, typed)
	}
	if typ := typed["verify_stage_seconds_parse"]; typ != "histogram" {
		t.Errorf("verify_stage_seconds_parse TYPE = %q", typ)
	}

	// Histogram invariants.
	var prev uint64
	var infCount, count uint64
	var sawSum bool
	for _, line := range samples["verify_stage_seconds_parse"] {
		val := line[strings.LastIndexByte(line, ' ')+1:]
		switch {
		case strings.Contains(line, "_bucket{"):
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", val, err)
			}
			if n < prev {
				t.Errorf("bucket series not cumulative: %q after %d", line, prev)
			}
			prev = n
			if strings.Contains(line, `le="+Inf"`) {
				infCount = n
			}
		case strings.Contains(line, "_count"):
			count, _ = strconv.ParseUint(val, 10, 64)
		case strings.Contains(line, "_sum"):
			sawSum = true
		}
	}
	if infCount != 6 || count != 6 {
		t.Errorf("+Inf bucket = %d, _count = %d, want 6", infCount, count)
	}
	if !sawSum {
		t.Error("histogram missing _sum sample")
	}
}

func TestPrometheusSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inf").Set(math.Inf(1))
	r.Gauge("neginf").Set(math.Inf(-1))
	r.Gauge("nan").Set(math.NaN())
	out := r.RenderText()
	for _, want := range []string{"inf +Inf\n", "neginf -Inf\n", "nan NaN\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusLabelPassthrough: a counter or gauge name carrying a
// trailing {...} block keeps it verbatim as its label set — only the
// base name is sanitised, headers name the bare family, and the sample
// line still parses against the exposition grammar.
func TestPrometheusLabelPassthrough(t *testing.T) {
	r := NewRegistry()
	r.Gauge(`msd_build_info{version="(devel)",revision="abc123",dirty="false"}`).Set(1)
	r.Counter(`flips_total{kind="matrix"}`).Add(2)
	out := r.RenderText()
	for _, want := range []string{
		`msd_build_info{version="(devel)",revision="abc123",dirty="false"} 1`,
		`flips_total{kind="matrix"} 2`,
		"# TYPE msd_build_info gauge",
		"# TYPE flips_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# TYPE msd_build_info{") {
		t.Errorf("header leaked the label block:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Errorf("sample line does not parse: %q", line)
		}
	}
	// A name that merely contains braces mid-string is not a label
	// block and must sanitise wholesale.
	r2 := NewRegistry()
	r2.Gauge(`odd{name`).Set(1)
	if out := r2.RenderText(); !strings.Contains(out, "odd_name 1") {
		t.Errorf("non-block braces not sanitised:\n%s", out)
	}
}

func TestPrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(1)
	r.Counter("a_total").Add(2)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	if a, b := r.RenderText(), r.RenderText(); a != b {
		t.Errorf("rendering not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewRegistry().Histogram("q", []float64{1, 2, 4})

	// Single observation: every quantile must return it.
	h.Observe(1.5)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got < 1.5 || got > 2 {
			t.Errorf("single-obs Quantile(%g) = %g want within [1.5,2]", q, got)
		}
	}

	h2 := NewRegistry().Histogram("q2", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 3, 100} { // 100 overflows the last bound
		h2.Observe(v)
	}
	if got := h2.Quantile(0); got != 0.5 {
		t.Errorf("Quantile(0) = %g want 0.5 (observed min)", got)
	}
	if got := h2.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %g want 100 (observed max)", got)
	}
	// A value above the last bound must clamp to max, not +Inf.
	h3 := NewRegistry().Histogram("q3", []float64{1})
	h3.Observe(50)
	if got := h3.Quantile(0.5); got != 50 {
		t.Errorf("overflow-only Quantile(0.5) = %g want 50", got)
	}
	if got := h3.Quantile(1); math.IsInf(got, 1) {
		t.Error("Quantile(1) leaked +Inf for overflow bucket")
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	const workers, perWorker = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.SetMax(float64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	want := float64(workers*perWorker - 1)
	if got := g.Value(); got != want {
		t.Errorf("concurrent SetMax = %g want %g", got, want)
	}
}
