package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed region of the Verify pipeline: either a stage
// (assemble, simulate, parse, stats, extract) or a per-run region. ID
// and Parent link spans into a tree rooted at the "verify" span.
type Span struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Run    int           `json:"run"`              // run index, -1 for non-run spans
	Detail string        `json:"detail,omitempty"` // e.g. the unit a stats span covers
	Start  time.Time     `json:"-"`
	Dur    time.Duration `json:"-"`
}

// spanJSON is the wire form of a span on the JSONL sink.
type spanJSON struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	Run     *int   `json:"run,omitempty"`
	Detail  string `json:"detail,omitempty"`
	StartNs int64  `json:"startNs"`
	DurNs   int64  `json:"durNs"`
}

// SpanTracer records pipeline spans. It is safe for concurrent use
// (runs execute in parallel), retains every finished span for
// aggregation, and optionally emits each span as one JSON line to a
// sink when it ends. Sink writes are serialised under the tracer's
// mutex, so the sink itself needs no locking and never sees
// interleaved lines — a plain *os.File or bytes.Buffer is a valid
// sink under Parallel > 1. A nil *SpanTracer is valid and records
// nothing, so instrumentation points need no nil checks.
type SpanTracer struct {
	mu    sync.Mutex
	sink  io.Writer
	next  uint64
	spans []Span
	err   error // first sink write error, if any
}

// NewSpanTracer returns a tracer; sink may be nil to only retain spans
// in memory.
func NewSpanTracer(sink io.Writer) *SpanTracer {
	return &SpanTracer{sink: sink}
}

// ActiveSpan is an in-flight span; call End exactly once.
type ActiveSpan struct {
	t    *SpanTracer
	span Span
}

// ID returns the span's identifier for parent linkage; 0 on a nil
// tracer's spans.
func (a ActiveSpan) ID() uint64 { return a.span.ID }

// Start opens a span. parent is the ID of the enclosing span (0 for the
// root); run is the run index the span belongs to, or -1 for stage
// spans covering all runs.
func (t *SpanTracer) Start(name string, parent uint64, run int) ActiveSpan {
	return t.StartDetail(name, parent, run, "")
}

// StartDetail is Start with a free-form detail label (e.g. the tracked
// unit a per-unit stats span covers).
func (t *SpanTracer) StartDetail(name string, parent uint64, run int, detail string) ActiveSpan {
	if t == nil {
		return ActiveSpan{}
	}
	t.mu.Lock()
	t.next++
	id := t.next
	t.mu.Unlock()
	return ActiveSpan{
		t: t,
		span: Span{
			ID:     id,
			Parent: parent,
			Name:   name,
			Run:    run,
			Detail: detail,
			Start:  time.Now(),
		},
	}
}

// End closes the span, retaining it and emitting it to the sink. It
// returns the measured duration (0 on a nil tracer's spans).
func (a ActiveSpan) End() time.Duration {
	if a.t == nil {
		return 0
	}
	a.span.Dur = time.Since(a.span.Start)
	a.t.record(a.span)
	return a.span.Dur
}

// Record inserts an already-measured span (used to attribute a portion
// of a measured interval, e.g. the parse share of a traced run).
func (t *SpanTracer) Record(name string, parent uint64, run int, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.next++
	id := t.next
	t.mu.Unlock()
	t.record(Span{
		ID: id, Parent: parent, Name: name, Run: run, Start: start, Dur: dur,
	})
}

// record retains the span and emits its JSONL form. The whole
// marshal-and-write happens under t.mu: concurrent End calls from the
// parallel worker pool must not interleave partial lines on the sink.
func (t *SpanTracer) record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, s)
	if t.sink == nil {
		return
	}
	js := spanJSON{
		ID:      s.ID,
		Parent:  s.Parent,
		Name:    s.Name,
		Detail:  s.Detail,
		StartNs: s.Start.UnixNano(),
		DurNs:   s.Dur.Nanoseconds(),
	}
	if s.Run >= 0 {
		run := s.Run
		js.Run = &run
	}
	line, err := json.Marshal(js)
	if err == nil {
		line = append(line, '\n')
		_, err = t.sink.Write(line)
	}
	if err != nil && t.err == nil {
		t.err = err
	}
}

// Spans returns a copy of every finished span, in end order.
func (t *SpanTracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Err returns the first sink write error, if any.
func (t *SpanTracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// DurStats summarises a duration sample set: the per-run distribution
// view of the paper's Table VI single totals.
type DurStats struct {
	N    int
	Min  time.Duration
	Mean time.Duration
	P95  time.Duration
	Max  time.Duration
}

// Stats computes DurStats over a duration sample set. P95 is the
// nearest-rank 95th percentile.
func Stats(ds []time.Duration) DurStats {
	if len(ds) == 0 {
		return DurStats{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	rank := (95*len(sorted) + 99) / 100 // ceil(0.95 n), 1-based
	if rank < 1 {
		rank = 1
	}
	return DurStats{
		N:    len(sorted),
		Min:  sorted[0],
		Mean: sum / time.Duration(len(sorted)),
		P95:  sorted[rank-1],
		Max:  sorted[len(sorted)-1],
	}
}

// SpanStats aggregates the durations of every span with the given name.
func SpanStats(spans []Span, name string) DurStats {
	var ds []time.Duration
	for _, s := range spans {
		if s.Name == name {
			ds = append(ds, s.Dur)
		}
	}
	return Stats(ds)
}
