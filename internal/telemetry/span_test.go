package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewSpanTracer(&buf)

	root := tr.Start("verify", 0, -1)
	run := tr.Start("run", root.ID(), 2)
	stats := tr.StartDetail("stats.unit", root.ID(), -1, "SQ-ADDR")
	stats.End()
	run.End()
	root.End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["run"].Parent != byName["verify"].ID {
		t.Error("run span not parented to verify")
	}
	if byName["run"].Run != 2 {
		t.Errorf("run index = %d", byName["run"].Run)
	}
	if byName["stats.unit"].Detail != "SQ-ADDR" {
		t.Error("detail missing")
	}

	// Sink: one well-formed JSON object per line, run field only on run
	// spans, durations non-negative.
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if m["name"] == "run" {
			if m["run"] != float64(2) {
				t.Errorf("run span missing run index: %v", m)
			}
		} else if _, present := m["run"]; present {
			t.Errorf("non-run span carries run field: %v", m)
		}
		if m["durNs"].(float64) < 0 {
			t.Errorf("negative duration: %v", m)
		}
	}
	if lines != 3 {
		t.Errorf("sink lines = %d want 3", lines)
	}
}

func TestSpanNilTracer(t *testing.T) {
	var tr *SpanTracer
	s := tr.Start("x", 0, -1)
	s.End() // must not panic
	tr.Record("y", 0, -1, time.Now(), time.Second)
	if tr.Spans() != nil || tr.Err() != nil {
		t.Error("nil tracer must return nothing")
	}
}

func TestSpanRecordSynthesised(t *testing.T) {
	tr := NewSpanTracer(nil)
	start := time.Now()
	tr.Record("parse", 7, 1, start, 42*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Dur != 42*time.Millisecond ||
		spans[0].Parent != 7 || spans[0].Run != 1 {
		t.Errorf("recorded span = %+v", spans)
	}
}

func TestSpanConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewSpanTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := tr.Start("run", 1, w)
				s.End()
			}
		}(w)
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != 400 {
		t.Fatalf("got %d spans want 400", len(spans))
	}
	seen := map[uint64]bool{}
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	if got := strings.Count(buf.String(), "\n"); got != 400 {
		t.Errorf("sink lines = %d want 400", got)
	}
}

func TestStats(t *testing.T) {
	ds := []time.Duration{
		40 * time.Millisecond, 10 * time.Millisecond,
		20 * time.Millisecond, 30 * time.Millisecond,
	}
	s := Stats(ds)
	if s.N != 4 || s.Min != 10*time.Millisecond || s.Max != 40*time.Millisecond {
		t.Errorf("stats = %+v", s)
	}
	if s.Mean != 25*time.Millisecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P95 != 40*time.Millisecond {
		t.Errorf("p95 = %v", s.P95)
	}
	if z := Stats(nil); z.N != 0 || z.Max != 0 {
		t.Errorf("empty stats = %+v", z)
	}
}

func TestSpanStats(t *testing.T) {
	spans := []Span{
		{Name: "run", Dur: 10 * time.Millisecond},
		{Name: "run", Dur: 30 * time.Millisecond},
		{Name: "stats", Dur: 5 * time.Millisecond},
	}
	s := SpanStats(spans, "run")
	if s.N != 2 || s.Mean != 20*time.Millisecond {
		t.Errorf("span stats = %+v", s)
	}
}

// TestSpanTracerConcurrentSink hammers one tracer from many goroutines
// (the parallel worker-pool shape: concurrent Start/End/Record against
// a shared unsynchronised sink) and checks that the JSONL stream comes
// out line-atomic and complete. Run under -race this also proves the
// tracer's mutex is the only synchronisation the sink needs.
func TestSpanTracerConcurrentSink(t *testing.T) {
	var buf bytes.Buffer // deliberately not goroutine-safe on its own
	tr := NewSpanTracer(&buf)
	root := tr.Start("verify", 0, -1)

	const workers, spansPerWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spansPerWorker; i++ {
				s := tr.StartDetail("run", root.ID(), w*spansPerWorker+i, "worker")
				tr.Record("parse", s.ID(), w, time.Now(), time.Microsecond)
				s.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	want := workers*spansPerWorker*2 + 1
	if got := len(tr.Spans()); got != want {
		t.Fatalf("retained %d spans, want %d", got, want)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	ids := map[uint64]bool{}
	for sc.Scan() {
		lines++
		var span struct {
			ID   uint64 `json:"id"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("interleaved or corrupt JSONL line %q: %v", sc.Text(), err)
		}
		if span.ID == 0 || ids[span.ID] {
			t.Fatalf("duplicate or zero span id on line %q", sc.Text())
		}
		ids[span.ID] = true
	}
	if lines != want {
		t.Fatalf("sink holds %d lines, want %d", lines, want)
	}
}
