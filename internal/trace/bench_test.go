package trace

import (
	"testing"

	"microsampler/internal/asm"
	"microsampler/internal/isa"
	"microsampler/internal/sim"
)

// probeGrab captures the simulator's probe so benchmarks can drive
// Collector.OnCycle against real core state without re-simulating.
type probeGrab struct{ p *sim.Probe }

func (g *probeGrab) OnCycle(p *sim.Probe)               { g.p = p }
func (g *probeGrab) OnMark(int64, isa.MarkKind, uint64) {}

// benchProbe runs the loop program for a bounded number of cycles and
// returns a probe frozen mid-execution, with the load/store queues,
// reorder buffer, fill buffers and functional units populated.
func benchProbe(tb testing.TB) *sim.Probe {
	tb.Helper()
	prog, err := asm.Assemble(loopProgram)
	if err != nil {
		tb.Fatalf("assemble: %v", err)
	}
	m, err := sim.New(sim.MegaBoom())
	if err != nil {
		tb.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		tb.Fatal(err)
	}
	g := &probeGrab{}
	m.SetTracer(g)
	m.Run(200) //nolint:errcheck // ErrMaxCycles expected: freeze mid-flight
	if g.p == nil {
		tb.Fatal("no probe captured")
	}
	return g.p
}

// BenchmarkOnCycle measures the steady-state per-cycle sampling cost of
// the collector across whole labeled iterations (the IterBegin/IterEnd
// bracket is part of the steady state: it resets the per-iteration
// recorders and folds the finished snapshot into the dedup store). The
// ns/cycle metric is the per-sampled-cycle cost the pipeline pays on
// every simulated cycle inside the region of interest.
func BenchmarkOnCycle(b *testing.B) {
	const cyclesPerIter = 64
	p := benchProbe(b)
	col := NewCollector()
	col.OnMark(0, isa.MarkROIBegin, 0)
	iter := func(class uint64) {
		col.OnMark(0, isa.MarkIterBegin, class)
		for c := 0; c < cyclesPerIter; c++ {
			col.OnCycle(p)
		}
		col.OnMark(cyclesPerIter, isa.MarkIterEnd, 0)
	}
	for i := 0; i < 64; i++ { // reach steady state: both classes seen
		iter(uint64(i & 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter(uint64(i & 1))
	}
	b.StopTimer()
	ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N*cyclesPerIter)
	b.ReportMetric(ns, "ns/cycle")
}

// BenchmarkOnCycleSingleUnit isolates the cost of one tracked unit, so
// per-unit regressions are visible without the 16-unit aggregate.
func BenchmarkOnCycleSingleUnit(b *testing.B) {
	const cyclesPerIter = 64
	p := benchProbe(b)
	col := NewCollector(WithUnits(SQADDR))
	col.OnMark(0, isa.MarkROIBegin, 0)
	iter := func(class uint64) {
		col.OnMark(0, isa.MarkIterBegin, class)
		for c := 0; c < cyclesPerIter; c++ {
			col.OnCycle(p)
		}
		col.OnMark(cyclesPerIter, isa.MarkIterEnd, 0)
	}
	for i := 0; i < 64; i++ {
		iter(uint64(i & 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter(uint64(i & 1))
	}
	b.StopTimer()
	ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N*cyclesPerIter)
	b.ReportMetric(ns, "ns/cycle")
}
