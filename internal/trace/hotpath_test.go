package trace

import (
	"testing"

	"microsampler/internal/isa"
)

// TestOnCycleSteadyStateZeroAlloc pins down the central property of the
// hot-path rewrite: once warm, sampling a cycle allocates nothing. The
// huge warmup-iteration count keeps IterEnd on the discard path so the
// measurement covers exactly the per-cycle machinery (row scratch,
// event set, recorders) and not the per-kept-iteration bookkeeping.
func TestOnCycleSteadyStateZeroAlloc(t *testing.T) {
	p := benchProbe(t)
	col := NewCollector(WithWarmupIterations(1 << 30))
	col.OnMark(0, isa.MarkROIBegin, 0)
	iter := func(class uint64) {
		col.OnMark(0, isa.MarkIterBegin, class)
		for c := 0; c < 64; c++ {
			col.OnCycle(p)
		}
		col.OnMark(64, isa.MarkIterEnd, 0)
	}
	for i := 0; i < 16; i++ { // warm scratch buffers and hash tables
		iter(uint64(i & 1))
	}
	allocs := testing.AllocsPerRun(100, func() { iter(1) })
	if allocs != 0 {
		t.Errorf("steady-state iteration allocated %v times, want 0", allocs)
	}
}

func TestU64Set(t *testing.T) {
	var s u64set
	if s.contains(42) {
		t.Error("empty set contains 42")
	}
	// Insert enough values to force several growths.
	for v := uint64(1); v <= 1000; v++ {
		s.insert(v)
		s.insert(v) // duplicate must be a no-op
	}
	if s.n != 1000 {
		t.Errorf("n = %d want 1000", s.n)
	}
	for v := uint64(1); v <= 1000; v++ {
		if !s.contains(v) {
			t.Fatalf("missing %d after insert", v)
		}
	}
	if s.contains(1001) {
		t.Error("contains(1001) on values 1..1000")
	}
	s.clear()
	if s.n != 0 {
		t.Errorf("n = %d after clear", s.n)
	}
	for v := uint64(1); v <= 1000; v++ {
		if s.contains(v) {
			t.Fatalf("contains(%d) after clear", v)
		}
	}
	// Reuse after clear.
	s.insert(7)
	if !s.contains(7) || s.contains(8) {
		t.Error("set broken after clear+insert")
	}
}

func TestU64SetGenerationWrap(t *testing.T) {
	var s u64set
	s.insert(5)
	s.cur = ^uint32(0) // force the next clear to wrap the generation
	s.clear()
	if s.contains(5) {
		t.Error("stale entry visible after generation wrap")
	}
	s.insert(9)
	if !s.contains(9) {
		t.Error("insert after generation wrap lost")
	}
}
