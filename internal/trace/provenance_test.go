package trace

import (
	"reflect"
	"testing"

	"microsampler/internal/asm"
	"microsampler/internal/sim"
	"microsampler/internal/siphash"
)

func runWithProgram(t *testing.T, src string, opts ...Option) (*Collector, *asm.Program) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := sim.New(sim.SmallBoom())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	col := NewCollector(opts...)
	m.SetTracer(col)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return col, p
}

func TestProvenanceStreams(t *testing.T) {
	col, prog := runWithProgram(t, loopProgram)
	iters := col.Iterations()
	prov := col.Provenance()
	if len(prov) != numUnits-2 {
		t.Fatalf("provenanced units = %d want %d (all but ROB-OCPNCY and LFB-Data)",
			len(prov), numUnits-2)
	}
	textLo := prog.TextBase
	textHi := textLo + uint64(len(prog.Text))
	byUnit := map[Unit]UnitProvenance{}
	for _, up := range prov {
		byUnit[up.Unit] = up
		if up.Unit == ROBOCPNCY || up.Unit == LFBDATA {
			t.Errorf("%v must not carry provenance", up.Unit)
		}
		for _, s := range up.Streams {
			if len(s.Iters) != len(s.Hashes) {
				t.Fatalf("%v key %#x: %d iters vs %d hashes",
					up.Unit, s.Key, len(s.Iters), len(s.Hashes))
			}
			if s.Events == 0 || len(s.Iters) == 0 {
				t.Errorf("%v key %#x: empty stream survived", up.Unit, s.Key)
			}
			for i, it := range s.Iters {
				if int(it) >= len(iters) || it < 0 {
					t.Fatalf("%v key %#x: iter index %d out of range", up.Unit, s.Key, it)
				}
				if i > 0 && it <= s.Iters[i-1] {
					t.Errorf("%v key %#x: iters not strictly increasing", up.Unit, s.Key)
				}
			}
			// Keys must be instruction addresses. Wrong-path speculation
			// can fetch a little past the text end, so allow a short
			// overrun beyond the last instruction.
			if up.Direct && (s.Key < textLo || s.Key >= textHi+256) {
				t.Errorf("%v: direct key %#x outside text [%#x,%#x)",
					up.Unit, s.Key, textLo, textHi)
			}
		}
	}
	// The store issued every iteration must attribute to a PC that the
	// attribution maps also list as a writer of the buffer address.
	sq := byUnit[SQADDR]
	if len(sq.Streams) == 0 {
		t.Fatal("SQ-ADDR collected no provenance streams")
	}
	writers, _ := col.Attribution()
	known := map[uint64]bool{}
	for _, pcs := range writers {
		for _, pc := range pcs {
			known[pc] = true
		}
	}
	for _, s := range sq.Streams {
		if !known[s.Key] {
			t.Errorf("SQ-ADDR stream PC %#x not present in writer attribution", s.Key)
		}
	}
}

func TestProvenanceDeterministic(t *testing.T) {
	a, _ := runWithProgram(t, loopProgram)
	b, _ := runWithProgram(t, loopProgram)
	if !reflect.DeepEqual(a.Provenance(), b.Provenance()) {
		t.Error("identical runs produced different provenance")
	}
}

func TestProvenanceRespectsWarmup(t *testing.T) {
	col, _ := runWithProgram(t, loopProgram, WithWarmupIterations(4))
	kept := len(col.Iterations())
	if kept != 2 {
		t.Fatalf("kept iterations = %d want 2", kept)
	}
	for _, up := range col.Provenance() {
		for _, s := range up.Streams {
			for _, it := range s.Iters {
				if int(it) >= kept {
					t.Fatalf("%v key %#x references dropped iteration %d", up.Unit, s.Key, it)
				}
			}
		}
	}
}

func TestEmptyStreamHash(t *testing.T) {
	if got, want := EmptyStreamHash(), siphash.Hash(siphash.DefaultKey, nil); got != want {
		t.Errorf("EmptyStreamHash = %#x want %#x", got, want)
	}
}
