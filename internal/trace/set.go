package trace

// u64set is a small open-addressing hash set of non-zero uint64 values
// with O(1) generation-based clearing. It backs the event-row
// derivation: membership of the previous cycle's state row used to be a
// linear scan per value, making the event diff O(|row|·|prev|); the set
// makes it O(|row|) with no per-cycle allocation (the table is reused
// across cycles and cleared by bumping a generation stamp).
//
// Zero values are never stored: event detection only queries non-zero
// values, so the caller filters zeros on both insert and lookup.
type u64set struct {
	keys []uint64 // power-of-two sized slot array
	gen  []uint32 // slot is live iff gen[i] == cur
	cur  uint32   // current generation
	n    int      // live entries
}

// mix is a splitmix64-style finaliser spreading entropy across all bits
// so low-bit-masked probing behaves well on addresses and PCs (which
// share low-order structure).
func mix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// clear empties the set in O(1) by advancing the generation.
func (s *u64set) clear() {
	s.n = 0
	s.cur++
	if s.cur == 0 { // generation wrapped: stamps are ambiguous, scrub them
		for i := range s.gen {
			s.gen[i] = 0
		}
		s.cur = 1
	}
}

// grow doubles the table (or creates it) and rehashes live entries.
func (s *u64set) grow() {
	oldKeys, oldGen, oldCur := s.keys, s.gen, s.cur
	size := 64
	if len(oldKeys) > 0 {
		size = len(oldKeys) * 2
	}
	s.keys = make([]uint64, size)
	s.gen = make([]uint32, size)
	s.cur = 1
	s.n = 0
	for i, g := range oldGen {
		if g == oldCur {
			s.insert(oldKeys[i])
		}
	}
}

// insert adds a non-zero value; duplicates are a no-op.
func (s *u64set) insert(v uint64) {
	// Keep load factor under 1/2 so probe chains stay short.
	if len(s.keys) == 0 || 2*(s.n+1) > len(s.keys) {
		s.grow()
	}
	mask := uint64(len(s.keys) - 1)
	i := mix(v) & mask
	for {
		if s.gen[i] != s.cur {
			s.keys[i] = v
			s.gen[i] = s.cur
			s.n++
			return
		}
		if s.keys[i] == v {
			return
		}
		i = (i + 1) & mask
	}
}

// contains reports whether a non-zero value is in the set.
func (s *u64set) contains(v uint64) bool {
	if s.n == 0 {
		return false
	}
	mask := uint64(len(s.keys) - 1)
	i := mix(v) & mask
	for {
		if s.gen[i] != s.cur {
			return false
		}
		if s.keys[i] == v {
			return true
		}
		i = (i + 1) & mask
	}
}
