// Package trace implements the microarchitectural state sampler: the
// bridge between the cycle-level simulator and the snapshot/statistics
// pipeline. It is the equivalent of the paper's Chisel printf
// instrumentation plus the MicroSampler Parser (steps 1–2 of Fig. 1):
// each cycle inside the security-critical region it captures one state
// row per tracked unit (Table IV), groups rows into per-iteration
// snapshot matrices, and deduplicates them by hash, labeled with the
// iteration's secret class.
//
// The per-cycle path is allocation-free in steady state: unit state is
// indexed by dense arrays rather than maps, every unit owns preallocated
// row scratch, event detection uses a generation-cleared hash set over
// the previous cycle's row, and event values stream into the snapshot
// recorders value by value.
package trace

import (
	"sort"

	"microsampler/internal/isa"
	"microsampler/internal/sim"
	"microsampler/internal/snapshot"
)

// Unit identifies one tracked microarchitectural feature (Table IV).
type Unit int

// Tracked features.
const (
	SQADDR     Unit = iota + 1 // store queue: store addresses
	SQPC                       // store queue: program counters
	LQADDR                     // load queue: load addresses
	LQPC                       // load queue: program counters
	ROBOCPNCY                  // reorder buffer occupancy
	ROBPC                      // reorder buffer program counters
	LFBDATA                    // load-fill buffer contents
	LFBADDR                    // load-fill buffer addresses
	EUUALU                     // ALU busy with PC
	EUUADDRGEN                 // address-generation unit busy with PC
	EUUDIV                     // divider busy with PC
	EUUMUL                     // multiplier busy with PC
	NLPADDR                    // next-line prefetcher addresses
	CACHEADDR                  // D-cache request addresses
	TLBADDR                    // TLB entries
	MSHRADDR                   // cache miss (MSHR) addresses

	numUnits = iota
)

var unitNames = map[Unit]string{
	SQADDR: "SQ-ADDR", SQPC: "SQ-PC", LQADDR: "LQ-ADDR", LQPC: "LQ-PC",
	ROBOCPNCY: "ROB-OCPNCY", ROBPC: "ROB-PC",
	LFBDATA: "LFB-Data", LFBADDR: "LFB-ADDR",
	EUUALU: "EUU-ALU", EUUADDRGEN: "EUU-ADDRGEN",
	EUUDIV: "EUU-DIV", EUUMUL: "EUU-MUL",
	NLPADDR: "NLP-ADDR", CACHEADDR: "Cache-ADDR",
	TLBADDR: "TLB-ADDR", MSHRADDR: "MSHR-ADDR",
}

// String returns the paper's feature identifier.
func (u Unit) String() string {
	if n, ok := unitNames[u]; ok {
		return n
	}
	return "UNIT?"
}

// valid reports whether u indexes a Table IV unit.
func (u Unit) valid() bool { return u >= 1 && u <= numUnits }

// AllUnits returns every tracked unit in Table IV order.
func AllUnits() []Unit {
	return []Unit{
		SQADDR, SQPC, LQADDR, LQPC, ROBOCPNCY, ROBPC, LFBDATA, LFBADDR,
		EUUALU, EUUADDRGEN, EUUDIV, EUUMUL, NLPADDR, CACHEADDR, TLBADDR,
		MSHRADDR,
	}
}

// IterSample summarises one labeled iteration.
type IterSample struct {
	Class  uint64
	Cycles int64
}

// UnitTrace is the collected snapshot evidence for one unit.
type UnitTrace struct {
	Unit Unit
	// Full holds the per-cycle snapshot matrices, timing included.
	Full *snapshot.Store
	// NoTiming holds the timing-free event view: the chronological
	// sequence of values newly appearing in the unit, with per-cycle
	// duration information discarded (the paper's "timing information
	// removed" transform of Section VII-B2).
	NoTiming *snapshot.Store
	// IterHashes is the full-snapshot hash of each kept iteration, in
	// execution order and aligned with Collector.Iterations. The Store
	// deduplicates by hash, so this sequence is what preserves *when*
	// each snapshot occurred — the leakage heatmap bins it into
	// iteration windows.
	IterHashes []uint64
}

// unitState is the per-unit sampling state, held in a dense array
// indexed by Unit so the per-cycle loop does no map lookups.
type unitState struct {
	rec        snapshot.Recorder // full (timed) snapshot of the iteration
	evRec      snapshot.Recorder // timing-free event stream
	row        []uint64          // per-unit row scratch, reused every cycle
	prev       u64set            // non-zero values of the previous cycle's row
	samples    uint64            // state rows sampled (telemetry)
	full       *snapshot.Store
	noT        *snapshot.Store
	iterHashes []uint64 // full-snapshot hash per kept iteration
}

// Collector implements sim.Tracer. It samples the tracked units every
// cycle while inside a region of interest and a labeled iteration.
type Collector struct {
	units  []Unit
	states [numUnits + 1]unitState // indexed by Unit (index 0 unused)

	roi       bool
	inIter    bool
	class     uint64
	iterStart int64
	iterIdx   int
	dropFirst int

	iters []IterSample

	// Memory-access attribution inside the region of interest: which
	// store/load PCs produced each address. This is the paper's
	// root-cause step of resolving leaked addresses back to the
	// instructions (and thus functions) that issued them.
	writers map[uint64]map[uint64]struct{}
	readers map[uint64]map[uint64]struct{}
}

var _ sim.Tracer = (*Collector)(nil)

// Option configures a Collector.
type Option func(*Collector)

// WithUnits restricts tracking to the given units (default: all).
// Values outside Table IV are ignored.
func WithUnits(units ...Unit) Option {
	return func(c *Collector) { c.units = units }
}

// WithWarmupIterations drops the first n labeled iterations from the
// analysis, discarding cold-start effects (cold caches and untrained
// predictors produce one-off snapshots that are not secret-dependent).
func WithWarmupIterations(n int) Option {
	return func(c *Collector) { c.dropFirst = n }
}

// NewCollector returns a Collector tracking all Table IV units.
func NewCollector(opts ...Option) *Collector {
	c := &Collector{
		units:   AllUnits(),
		writers: make(map[uint64]map[uint64]struct{}),
		readers: make(map[uint64]map[uint64]struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	// Filter into a fresh slice: the configured slice may be shared
	// between collectors running in parallel, so it must stay read-only.
	kept := make([]Unit, 0, len(c.units))
	for _, u := range c.units {
		if u.valid() {
			kept = append(kept, u)
		}
	}
	c.units = kept
	for _, u := range c.units {
		st := &c.states[u]
		st.rec.Reset()
		st.evRec.Reset()
		st.row = make([]uint64, 0, 128)
		st.full = snapshot.NewStore()
		st.noT = snapshot.NewStore()
	}
	return c
}

// OnMark handles commit-time region and iteration markers.
func (c *Collector) OnMark(cycle int64, kind isa.MarkKind, class uint64) {
	switch kind {
	case isa.MarkROIBegin:
		c.roi = true
	case isa.MarkROIEnd:
		c.roi = false
		c.inIter = false
	case isa.MarkIterBegin:
		if !c.roi {
			return
		}
		c.inIter = true
		c.class = class
		c.iterStart = cycle
		for _, u := range c.units {
			st := &c.states[u]
			st.rec.Reset()
			st.evRec.Reset()
			st.prev.clear()
		}
	case isa.MarkIterEnd:
		if !c.roi || !c.inIter {
			return
		}
		c.inIter = false
		keep := c.iterIdx >= c.dropFirst
		c.iterIdx++
		if !keep {
			return
		}
		c.iters = append(c.iters, IterSample{
			Class:  c.class,
			Cycles: cycle - c.iterStart,
		})
		for _, u := range c.units {
			st := &c.states[u]
			fullH, _ := st.rec.Hashes()
			st.full.ObserveFrom(c.class, fullH, &st.rec)
			st.iterHashes = append(st.iterHashes, fullH)
			evH, _ := st.evRec.Hashes()
			st.noT.ObserveFrom(c.class, evH, &st.evRec)
		}
	}
}

// OnCycle samples one state row per unit and derives its timing-free
// event row: the values present this cycle that were absent the cycle
// before (newly arrived entries, changed states, issued requests). Each
// event becomes its own single-value row so that the event stream
// carries no per-cycle grouping (which would smuggle timing back into
// the "timing removed" view).
func (c *Collector) OnCycle(p *sim.Probe) {
	if !c.roi || !c.inIter {
		return
	}
	for _, u := range c.units {
		st := &c.states[u]
		row := sampleInto(u, p, st.row[:0])
		st.row = row
		for _, v := range row {
			if v != 0 && !st.prev.contains(v) {
				st.evRec.AddValue(v)
			}
		}
		st.rec.AddRow(row)
		st.samples++
		st.prev.clear()
		for _, v := range row {
			if v != 0 {
				st.prev.insert(v)
			}
		}
	}
	for _, e := range p.StoreQueue() {
		if e.Valid {
			attribute(c.writers, e.Addr, e.PC)
		}
	}
	for _, e := range p.LoadQueue() {
		if e.Valid {
			attribute(c.readers, e.Addr, e.PC)
		}
	}
}

func attribute(m map[uint64]map[uint64]struct{}, addr, pc uint64) {
	set := m[addr]
	if set == nil {
		set = make(map[uint64]struct{}, 1)
		m[addr] = set
	}
	set[pc] = struct{}{}
}

// sampleInto appends the state row of one unit for the current cycle to
// dst, using the probe's allocation-free append views.
func sampleInto(u Unit, p *sim.Probe, dst []uint64) []uint64 {
	switch u {
	case SQADDR:
		return p.AppendStoreAddrs(dst)
	case SQPC:
		return p.AppendStorePCs(dst)
	case LQADDR:
		return p.AppendLoadAddrs(dst)
	case LQPC:
		return p.AppendLoadPCs(dst)
	case ROBOCPNCY:
		return append(dst, uint64(p.ROBOccupancy()))
	case ROBPC:
		return p.AppendROBPCs(dst)
	case LFBDATA:
		return p.AppendLFBData(dst)
	case LFBADDR:
		return p.AppendLFBAddrs(dst)
	case EUUALU:
		return p.AppendALUBusy(dst)
	case EUUADDRGEN:
		return p.AppendAGUBusy(dst)
	case EUUDIV:
		return p.AppendDivBusy(dst)
	case EUUMUL:
		return p.AppendMulBusy(dst)
	case NLPADDR:
		return p.AppendPrefetchAddrs(dst)
	case CACHEADDR:
		return p.AppendCacheRequests(dst)
	case TLBADDR:
		return p.AppendTLBPages(dst)
	case MSHRADDR:
		return p.AppendMSHRAddrs(dst)
	}
	return dst
}

// Results returns the per-unit snapshot evidence in tracked order.
func (c *Collector) Results() []UnitTrace {
	out := make([]UnitTrace, 0, len(c.units))
	for _, u := range c.units {
		st := &c.states[u]
		out = append(out, UnitTrace{
			Unit: u, Full: st.full, NoTiming: st.noT, IterHashes: st.iterHashes,
		})
	}
	return out
}

// SampleCounts returns, per tracked unit, the number of state rows
// sampled inside labeled iterations — the volume the snapshot pipeline
// ingested, surfaced as telemetry.
func (c *Collector) SampleCounts() map[Unit]uint64 {
	out := make(map[Unit]uint64, len(c.units))
	for _, u := range c.units {
		if n := c.states[u].samples; n > 0 {
			out[u] = n
		}
	}
	return out
}

// Iterations returns the kept iteration samples in execution order.
func (c *Collector) Iterations() []IterSample {
	out := make([]IterSample, len(c.iters))
	copy(out, c.iters)
	return out
}

// Attribution returns the memory-access attribution gathered inside the
// region of interest: per address, the sorted PCs of the stores
// (writers) and loads (readers) that produced it.
func (c *Collector) Attribution() (writers, readers map[uint64][]uint64) {
	return flattenAttribution(c.writers), flattenAttribution(c.readers)
}

func flattenAttribution(m map[uint64]map[uint64]struct{}) map[uint64][]uint64 {
	out := make(map[uint64][]uint64, len(m))
	for addr, pcs := range m {
		list := make([]uint64, 0, len(pcs))
		for pc := range pcs {
			list = append(list, pc)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		out[addr] = list
	}
	return out
}
