// Package trace implements the microarchitectural state sampler: the
// bridge between the cycle-level simulator and the snapshot/statistics
// pipeline. It is the equivalent of the paper's Chisel printf
// instrumentation plus the MicroSampler Parser (steps 1–2 of Fig. 1):
// each cycle inside the security-critical region it captures one state
// row per tracked unit (Table IV), groups rows into per-iteration
// snapshot matrices, and deduplicates them by hash, labeled with the
// iteration's secret class.
package trace

import (
	"sort"

	"microsampler/internal/isa"
	"microsampler/internal/sim"
	"microsampler/internal/snapshot"
)

// Unit identifies one tracked microarchitectural feature (Table IV).
type Unit int

// Tracked features.
const (
	SQADDR     Unit = iota + 1 // store queue: store addresses
	SQPC                       // store queue: program counters
	LQADDR                     // load queue: load addresses
	LQPC                       // load queue: program counters
	ROBOCPNCY                  // reorder buffer occupancy
	ROBPC                      // reorder buffer program counters
	LFBDATA                    // load-fill buffer contents
	LFBADDR                    // load-fill buffer addresses
	EUUALU                     // ALU busy with PC
	EUUADDRGEN                 // address-generation unit busy with PC
	EUUDIV                     // divider busy with PC
	EUUMUL                     // multiplier busy with PC
	NLPADDR                    // next-line prefetcher addresses
	CACHEADDR                  // D-cache request addresses
	TLBADDR                    // TLB entries
	MSHRADDR                   // cache miss (MSHR) addresses

	numUnits = iota
)

var unitNames = map[Unit]string{
	SQADDR: "SQ-ADDR", SQPC: "SQ-PC", LQADDR: "LQ-ADDR", LQPC: "LQ-PC",
	ROBOCPNCY: "ROB-OCPNCY", ROBPC: "ROB-PC",
	LFBDATA: "LFB-Data", LFBADDR: "LFB-ADDR",
	EUUALU: "EUU-ALU", EUUADDRGEN: "EUU-ADDRGEN",
	EUUDIV: "EUU-DIV", EUUMUL: "EUU-MUL",
	NLPADDR: "NLP-ADDR", CACHEADDR: "Cache-ADDR",
	TLBADDR: "TLB-ADDR", MSHRADDR: "MSHR-ADDR",
}

// String returns the paper's feature identifier.
func (u Unit) String() string {
	if n, ok := unitNames[u]; ok {
		return n
	}
	return "UNIT?"
}

// AllUnits returns every tracked unit in Table IV order.
func AllUnits() []Unit {
	return []Unit{
		SQADDR, SQPC, LQADDR, LQPC, ROBOCPNCY, ROBPC, LFBDATA, LFBADDR,
		EUUALU, EUUADDRGEN, EUUDIV, EUUMUL, NLPADDR, CACHEADDR, TLBADDR,
		MSHRADDR,
	}
}

// IterSample summarises one labeled iteration.
type IterSample struct {
	Class  uint64
	Cycles int64
}

// UnitTrace is the collected snapshot evidence for one unit.
type UnitTrace struct {
	Unit Unit
	// Full holds the per-cycle snapshot matrices, timing included.
	Full *snapshot.Store
	// NoTiming holds the timing-free event view: the chronological
	// sequence of values newly appearing in the unit, with per-cycle
	// duration information discarded (the paper's "timing information
	// removed" transform of Section VII-B2).
	NoTiming *snapshot.Store
}

// Collector implements sim.Tracer. It samples the tracked units every
// cycle while inside a region of interest and a labeled iteration.
type Collector struct {
	units   []Unit
	recs    map[Unit]*snapshot.Recorder
	evRecs  map[Unit]*snapshot.Recorder
	prevRow map[Unit][]uint64
	full    map[Unit]*snapshot.Store
	noT     map[Unit]*snapshot.Store
	samples map[Unit]uint64 // state rows sampled per unit (telemetry)

	roi       bool
	inIter    bool
	class     uint64
	iterStart int64
	iterIdx   int
	dropFirst int

	iters []IterSample
	row   []uint64 // scratch
	ev    []uint64 // scratch for event rows

	// Memory-access attribution inside the region of interest: which
	// store/load PCs produced each address. This is the paper's
	// root-cause step of resolving leaked addresses back to the
	// instructions (and thus functions) that issued them.
	writers map[uint64]map[uint64]struct{}
	readers map[uint64]map[uint64]struct{}
}

var _ sim.Tracer = (*Collector)(nil)

// Option configures a Collector.
type Option func(*Collector)

// WithUnits restricts tracking to the given units (default: all).
func WithUnits(units ...Unit) Option {
	return func(c *Collector) { c.units = units }
}

// WithWarmupIterations drops the first n labeled iterations from the
// analysis, discarding cold-start effects (cold caches and untrained
// predictors produce one-off snapshots that are not secret-dependent).
func WithWarmupIterations(n int) Option {
	return func(c *Collector) { c.dropFirst = n }
}

// NewCollector returns a Collector tracking all Table IV units.
func NewCollector(opts ...Option) *Collector {
	c := &Collector{
		units:   AllUnits(),
		recs:    make(map[Unit]*snapshot.Recorder, numUnits),
		evRecs:  make(map[Unit]*snapshot.Recorder, numUnits),
		prevRow: make(map[Unit][]uint64, numUnits),
		full:    make(map[Unit]*snapshot.Store, numUnits),
		noT:     make(map[Unit]*snapshot.Store, numUnits),
		samples: make(map[Unit]uint64, numUnits),
		row:     make([]uint64, 0, 128),
		ev:      make([]uint64, 0, 128),
		writers: make(map[uint64]map[uint64]struct{}),
		readers: make(map[uint64]map[uint64]struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	for _, u := range c.units {
		c.recs[u] = snapshot.NewRecorder()
		c.evRecs[u] = snapshot.NewRecorder()
		c.full[u] = snapshot.NewStore()
		c.noT[u] = snapshot.NewStore()
	}
	return c
}

// OnMark handles commit-time region and iteration markers.
func (c *Collector) OnMark(cycle int64, kind isa.MarkKind, class uint64) {
	switch kind {
	case isa.MarkROIBegin:
		c.roi = true
	case isa.MarkROIEnd:
		c.roi = false
		c.inIter = false
	case isa.MarkIterBegin:
		if !c.roi {
			return
		}
		c.inIter = true
		c.class = class
		c.iterStart = cycle
		for _, u := range c.units {
			c.recs[u].Reset()
			c.evRecs[u].Reset()
			c.prevRow[u] = nil
		}
	case isa.MarkIterEnd:
		if !c.roi || !c.inIter {
			return
		}
		c.inIter = false
		keep := c.iterIdx >= c.dropFirst
		c.iterIdx++
		if keep {
			c.iters = append(c.iters, IterSample{
				Class:  c.class,
				Cycles: cycle - c.iterStart,
			})
		}
		if !keep {
			return
		}
		for _, u := range c.units {
			fullH, _, rows := c.recs[u].Finish()
			c.full[u].Observe(c.class, fullH, rows)
			evH, _, evRows := c.evRecs[u].Finish()
			c.noT[u].Observe(c.class, evH, evRows)
		}
	}
}

// OnCycle samples one state row per unit and derives its timing-free
// event row: the values present this cycle that were absent the cycle
// before (newly arrived entries, changed states, issued requests).
func (c *Collector) OnCycle(p *sim.Probe) {
	if !c.roi || !c.inIter {
		return
	}
	for _, u := range c.units {
		row := c.sample(u, p)
		// Each event becomes its own single-value row so that the event
		// stream carries no per-cycle grouping (which would smuggle
		// timing back into the "timing removed" view).
		for _, v := range c.eventRow(u, row) {
			c.evRecs[u].AddRow([]uint64{v})
		}
		c.recs[u].AddRow(row)
		c.samples[u]++
		prev := c.prevRow[u]
		c.prevRow[u] = append(prev[:0], row...)
	}
	for _, e := range p.StoreQueue() {
		if e.Valid {
			attribute(c.writers, e.Addr, e.PC)
		}
	}
	for _, e := range p.LoadQueue() {
		if e.Valid {
			attribute(c.readers, e.Addr, e.PC)
		}
	}
}

func attribute(m map[uint64]map[uint64]struct{}, addr, pc uint64) {
	set := m[addr]
	if set == nil {
		set = make(map[uint64]struct{}, 1)
		m[addr] = set
	}
	set[pc] = struct{}{}
}

// eventRow returns the non-zero values of row that do not appear in the
// previous cycle's row, in row (age) order.
func (c *Collector) eventRow(u Unit, row []uint64) []uint64 {
	prev := c.prevRow[u]
	ev := c.ev[:0]
	for _, v := range row {
		if v == 0 {
			continue
		}
		seen := false
		for _, pv := range prev {
			if pv == v {
				seen = true
				break
			}
		}
		if !seen {
			ev = append(ev, v)
		}
	}
	c.ev = ev[:0]
	return ev
}

// sample builds the state row of one unit for the current cycle.
func (c *Collector) sample(u Unit, p *sim.Probe) []uint64 {
	row := c.row[:0]
	switch u {
	case SQADDR:
		for _, e := range p.StoreQueue() {
			if e.Valid {
				row = append(row, e.Addr)
			} else {
				row = append(row, 0)
			}
		}
	case SQPC:
		for _, e := range p.StoreQueue() {
			row = append(row, e.PC)
		}
	case LQADDR:
		for _, e := range p.LoadQueue() {
			if e.Valid {
				row = append(row, e.Addr)
			} else {
				row = append(row, 0)
			}
		}
	case LQPC:
		for _, e := range p.LoadQueue() {
			row = append(row, e.PC)
		}
	case ROBOCPNCY:
		row = append(row, uint64(p.ROBOccupancy()))
	case ROBPC:
		for _, e := range p.ROB() {
			if !e.Folded {
				row = append(row, e.PC)
			}
		}
	case LFBDATA:
		for _, e := range p.LFB() {
			row = append(row, e.Data)
		}
	case LFBADDR:
		for _, e := range p.LFB() {
			row = append(row, e.Addr)
		}
	case EUUALU:
		row = append(row, p.ALUBusy()...)
	case EUUADDRGEN:
		row = append(row, p.AGUBusy()...)
	case EUUDIV:
		row = append(row, p.DivBusy()...)
	case EUUMUL:
		row = append(row, p.MulBusy()...)
	case NLPADDR:
		row = append(row, p.PrefetchAddrs()...)
	case CACHEADDR:
		row = append(row, p.CacheRequests()...)
	case TLBADDR:
		row = append(row, p.TLBPages()...)
	case MSHRADDR:
		row = append(row, p.MSHRAddrs()...)
	}
	c.row = row[:0]
	return row
}

// Results returns the per-unit snapshot evidence in Table IV order.
func (c *Collector) Results() []UnitTrace {
	out := make([]UnitTrace, 0, len(c.units))
	for _, u := range c.units {
		out = append(out, UnitTrace{Unit: u, Full: c.full[u], NoTiming: c.noT[u]})
	}
	return out
}

// SampleCounts returns, per tracked unit, the number of state rows
// sampled inside labeled iterations — the volume the snapshot pipeline
// ingested, surfaced as telemetry.
func (c *Collector) SampleCounts() map[Unit]uint64 {
	out := make(map[Unit]uint64, len(c.samples))
	for u, n := range c.samples {
		out[u] = n
	}
	return out
}

// Iterations returns the kept iteration samples in execution order.
func (c *Collector) Iterations() []IterSample {
	out := make([]IterSample, len(c.iters))
	copy(out, c.iters)
	return out
}

// Attribution returns the memory-access attribution gathered inside the
// region of interest: per address, the sorted PCs of the stores
// (writers) and loads (readers) that produced it.
func (c *Collector) Attribution() (writers, readers map[uint64][]uint64) {
	return flattenAttribution(c.writers), flattenAttribution(c.readers)
}

func flattenAttribution(m map[uint64]map[uint64]struct{}) map[uint64][]uint64 {
	out := make(map[uint64][]uint64, len(m))
	for addr, pcs := range m {
		list := make([]uint64, 0, len(pcs))
		for pc := range pcs {
			list = append(list, pc)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		out[addr] = list
	}
	return out
}
