// Package trace implements the microarchitectural state sampler: the
// bridge between the cycle-level simulator and the snapshot/statistics
// pipeline. It is the equivalent of the paper's Chisel printf
// instrumentation plus the MicroSampler Parser (steps 1–2 of Fig. 1):
// each cycle inside the security-critical region it captures one state
// row per tracked unit (Table IV), groups rows into per-iteration
// snapshot matrices, and deduplicates them by hash, labeled with the
// iteration's secret class.
//
// The per-cycle path is allocation-free in steady state: unit state is
// indexed by dense arrays rather than maps, every unit owns preallocated
// row scratch, event detection uses a generation-cleared hash set over
// the previous cycle's row, and event values stream into the snapshot
// recorders value by value.
package trace

import (
	"sort"

	"microsampler/internal/isa"
	"microsampler/internal/sim"
	"microsampler/internal/siphash"
	"microsampler/internal/snapshot"
)

// Unit identifies one tracked microarchitectural feature (Table IV).
type Unit int

// Tracked features.
const (
	SQADDR     Unit = iota + 1 // store queue: store addresses
	SQPC                       // store queue: program counters
	LQADDR                     // load queue: load addresses
	LQPC                       // load queue: program counters
	ROBOCPNCY                  // reorder buffer occupancy
	ROBPC                      // reorder buffer program counters
	LFBDATA                    // load-fill buffer contents
	LFBADDR                    // load-fill buffer addresses
	EUUALU                     // ALU busy with PC
	EUUADDRGEN                 // address-generation unit busy with PC
	EUUDIV                     // divider busy with PC
	EUUMUL                     // multiplier busy with PC
	NLPADDR                    // next-line prefetcher addresses
	CACHEADDR                  // D-cache request addresses
	TLBADDR                    // TLB entries
	MSHRADDR                   // cache miss (MSHR) addresses
	TAGEPRED                   // TAGE predictor: in-flight prediction metadata
	SPFADDR                    // stride prefetcher addresses

	numUnits = iota
)

var unitNames = map[Unit]string{
	SQADDR: "SQ-ADDR", SQPC: "SQ-PC", LQADDR: "LQ-ADDR", LQPC: "LQ-PC",
	ROBOCPNCY: "ROB-OCPNCY", ROBPC: "ROB-PC",
	LFBDATA: "LFB-Data", LFBADDR: "LFB-ADDR",
	EUUALU: "EUU-ALU", EUUADDRGEN: "EUU-ADDRGEN",
	EUUDIV: "EUU-DIV", EUUMUL: "EUU-MUL",
	NLPADDR: "NLP-ADDR", CACHEADDR: "Cache-ADDR",
	TLBADDR: "TLB-ADDR", MSHRADDR: "MSHR-ADDR",
	TAGEPRED: "TAGE-PRED", SPFADDR: "SPF-ADDR",
}

// String returns the paper's feature identifier.
func (u Unit) String() string {
	if n, ok := unitNames[u]; ok {
		return n
	}
	return "UNIT?"
}

// valid reports whether u indexes a Table IV unit.
func (u Unit) valid() bool { return u >= 1 && u <= numUnits }

// AllUnits returns every tracked unit: Table IV order, followed by the
// extended hardware-space units (TAGE predictor, stride prefetcher).
func AllUnits() []Unit {
	return []Unit{
		SQADDR, SQPC, LQADDR, LQPC, ROBOCPNCY, ROBPC, LFBDATA, LFBADDR,
		EUUALU, EUUADDRGEN, EUUDIV, EUUMUL, NLPADDR, CACHEADDR, TLBADDR,
		MSHRADDR, TAGEPRED, SPFADDR,
	}
}

// IterSample summarises one labeled iteration.
type IterSample struct {
	Class  uint64
	Cycles int64
}

// UnitTrace is the collected snapshot evidence for one unit.
type UnitTrace struct {
	Unit Unit
	// Full holds the per-cycle snapshot matrices, timing included.
	Full *snapshot.Store
	// NoTiming holds the timing-free event view: the chronological
	// sequence of values newly appearing in the unit, with per-cycle
	// duration information discarded (the paper's "timing information
	// removed" transform of Section VII-B2).
	NoTiming *snapshot.Store
	// IterHashes is the full-snapshot hash of each kept iteration, in
	// execution order and aligned with Collector.Iterations. The Store
	// deduplicates by hash, so this sequence is what preserves *when*
	// each snapshot occurred — the leakage heatmap bins it into
	// iteration windows.
	IterHashes []uint64
}

// provKind classifies how a unit's events are attributed to code.
type provKind int

const (
	// provNone: the unit's values carry no attributable key (pure
	// occupancy counts, cache-line contents).
	provNone provKind = iota
	// provDirect: each event carries the program counter of the
	// instruction responsible, either because the sampled value is a PC
	// itself or because the probe exposes a slot-aligned PC row.
	provDirect
	// provValue: events are keyed by the observed value (an address at
	// byte, line or page granularity) and resolved to PCs afterwards
	// through the Attribution writer/reader maps.
	provValue
)

// provKindOf returns the attribution mode of a unit.
func provKindOf(u Unit) provKind {
	switch u {
	case ROBOCPNCY, LFBDATA:
		return provNone
	case SQADDR, LQADDR, SQPC, LQPC, ROBPC, EUUALU, EUUADDRGEN, EUUDIV, EUUMUL, TAGEPRED, SPFADDR:
		return provDirect
	}
	return provValue
}

// provTimedRuns reports whether a unit's streams must also encode how
// long each value occupies its slot. The execution units leak through
// residency, not arrival: an early-out divider holds the same PC for an
// operand-dependent number of cycles while producing exactly one
// arrival event per divide, so without run lengths both key classes
// hash to identical streams and the leak cannot be localized.
func provTimedRuns(u Unit) bool {
	switch u {
	case EUUALU, EUUADDRGEN, EUUDIV, EUUMUL:
		return true
	}
	return false
}

// provStream accumulates the event evidence for one key (a PC for
// direct units, an observed value otherwise) of one unit. The event
// values of the current iteration stream into a running siphash; kept
// iterations flush the digest into the unit's provenance log.
type provStream struct {
	h          siphash.Hasher
	iterEvents uint64 // events seen this iteration
	events     uint64 // events across kept iterations
	touched    bool   // appeared this iteration (queued in provTouched)
}

// provRec is one kept-iteration observation of one key: all records of
// a unit share a single append-only log so the per-iteration flush has
// the same amortised allocation profile as iterHashes.
type provRec struct {
	key  uint64
	hash uint64
	iter int32 // index into Collector.iters
}

// unitState is the per-unit sampling state, held in a dense array
// indexed by Unit so the per-cycle loop does no map lookups.
type unitState struct {
	rec        snapshot.Recorder // full (timed) snapshot of the iteration
	evRec      snapshot.Recorder // timing-free event stream
	row        []uint64          // per-unit row scratch, reused every cycle
	pcRow      []uint64          // slot-aligned PC row scratch (SQADDR/LQADDR)
	prev       u64set            // non-zero values of the previous cycle's row
	samples    uint64            // state rows sampled (telemetry)
	full       *snapshot.Store
	noT        *snapshot.Store
	iterHashes []uint64 // full-snapshot hash per kept iteration

	kind        provKind
	prov        map[uint64]*provStream // per-key event accumulators
	provTouched []uint64               // keys touched this iteration
	provLog     []provRec              // kept-iteration observations

	timedRuns bool     // streams also encode per-slot occupancy runs
	prevRow   []uint64 // previous cycle's row (timed units only)
	runLen    []uint32 // consecutive cycles each slot held its value
}

// provEvent folds one event value into the stream of its key. Streams
// are allocated on a key's first-ever sighting; afterwards the per-event
// cost is one map lookup and one hash round.
func (st *unitState) provEvent(key, v uint64) {
	ps := st.prov[key]
	if ps == nil {
		ps = &provStream{}
		ps.h.Reset(siphash.DefaultKey)
		st.prov[key] = ps
	}
	if !ps.touched {
		ps.touched = true
		st.provTouched = append(st.provTouched, key)
	}
	ps.h.WriteUint64(v)
	ps.iterEvents++
}

// provRun folds a completed occupancy run into its key's stream. The
// high tag bit keeps run lengths from colliding with sampled values;
// runs do not count as events (the arrival already did).
func (st *unitState) provRun(key uint64, n uint32) {
	ps := st.prov[key]
	if ps == nil {
		ps = &provStream{}
		ps.h.Reset(siphash.DefaultKey)
		st.prov[key] = ps
	}
	if !ps.touched {
		ps.touched = true
		st.provTouched = append(st.provTouched, key)
	}
	ps.h.WriteUint64(1<<63 | uint64(n))
}

// updateRuns advances per-slot occupancy runs for a timed unit: a slot
// keeping its value extends the run, a slot changing or draining folds
// the finished run's length into the departing key's stream.
func (st *unitState) updateRuns(row []uint64) {
	for len(st.prevRow) < len(row) {
		st.prevRow = append(st.prevRow, 0)
		st.runLen = append(st.runLen, 0)
	}
	for i := len(row); i < len(st.prevRow); i++ {
		if st.prevRow[i] != 0 {
			st.provRun(st.prevRow[i], st.runLen[i])
			st.prevRow[i], st.runLen[i] = 0, 0
		}
	}
	st.prevRow = st.prevRow[:len(row)]
	st.runLen = st.runLen[:len(row)]
	for i, v := range row {
		switch {
		case v == st.prevRow[i]:
			if v != 0 {
				st.runLen[i]++
			}
		default:
			if st.prevRow[i] != 0 {
				st.provRun(st.prevRow[i], st.runLen[i])
			}
			st.prevRow[i] = v
			if v != 0 {
				st.runLen[i] = 1
			} else {
				st.runLen[i] = 0
			}
		}
	}
}

// foldRuns closes out the outstanding runs at an iteration boundary so
// that a run in flight when iter.end commits still contributes its
// length to this iteration's streams.
func (st *unitState) foldRuns() {
	for i, v := range st.prevRow {
		if v != 0 {
			st.provRun(v, st.runLen[i])
		}
		st.prevRow[i], st.runLen[i] = 0, 0
	}
}

// resetProv discards the current iteration's stream state.
func (st *unitState) resetProv() {
	for _, key := range st.provTouched {
		ps := st.prov[key]
		ps.touched = false
		ps.iterEvents = 0
		ps.h.Reset(siphash.DefaultKey)
	}
	st.provTouched = st.provTouched[:0]
	for i := range st.prevRow {
		st.prevRow[i], st.runLen[i] = 0, 0
	}
}

// flushProv commits the current iteration's streams to the provenance
// log under kept-iteration index iter, then resets them.
func (st *unitState) flushProv(iter int32) {
	for _, key := range st.provTouched {
		ps := st.prov[key]
		st.provLog = append(st.provLog, provRec{key: key, hash: ps.h.Sum64(), iter: iter})
		ps.events += ps.iterEvents
		ps.touched = false
		ps.iterEvents = 0
		ps.h.Reset(siphash.DefaultKey)
	}
	st.provTouched = st.provTouched[:0]
}

// Collector implements sim.Tracer. It samples the tracked units every
// cycle while inside a region of interest and a labeled iteration.
type Collector struct {
	units  []Unit
	states [numUnits + 1]unitState // indexed by Unit (index 0 unused)

	roi       bool
	inIter    bool
	class     uint64
	iterStart int64
	iterIdx   int
	dropFirst int

	iters []IterSample

	// Memory-access attribution inside the region of interest: which
	// store/load PCs produced each address. This is the paper's
	// root-cause step of resolving leaked addresses back to the
	// instructions (and thus functions) that issued them.
	writers map[uint64]map[uint64]struct{}
	readers map[uint64]map[uint64]struct{}
}

var _ sim.Tracer = (*Collector)(nil)

// Option configures a Collector.
type Option func(*Collector)

// WithUnits restricts tracking to the given units (default: all).
// Values outside Table IV are ignored.
func WithUnits(units ...Unit) Option {
	return func(c *Collector) { c.units = units }
}

// WithWarmupIterations drops the first n labeled iterations from the
// analysis, discarding cold-start effects (cold caches and untrained
// predictors produce one-off snapshots that are not secret-dependent).
func WithWarmupIterations(n int) Option {
	return func(c *Collector) { c.dropFirst = n }
}

// NewCollector returns a Collector tracking all Table IV units.
func NewCollector(opts ...Option) *Collector {
	c := &Collector{
		units:   AllUnits(),
		writers: make(map[uint64]map[uint64]struct{}),
		readers: make(map[uint64]map[uint64]struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	// Filter into a fresh slice: the configured slice may be shared
	// between collectors running in parallel, so it must stay read-only.
	kept := make([]Unit, 0, len(c.units))
	for _, u := range c.units {
		if u.valid() {
			kept = append(kept, u)
		}
	}
	c.units = kept
	for _, u := range c.units {
		st := &c.states[u]
		st.rec.Reset()
		st.evRec.Reset()
		st.row = make([]uint64, 0, 128)
		st.full = snapshot.NewStore()
		st.noT = snapshot.NewStore()
		st.kind = provKindOf(u)
		if st.kind != provNone {
			st.prov = make(map[uint64]*provStream)
		}
		st.timedRuns = provTimedRuns(u)
		if u == SQADDR || u == LQADDR || u == TAGEPRED || u == SPFADDR {
			st.pcRow = make([]uint64, 0, 128)
		}
	}
	return c
}

// OnMark handles commit-time region and iteration markers.
func (c *Collector) OnMark(cycle int64, kind isa.MarkKind, class uint64) {
	switch kind {
	case isa.MarkROIBegin:
		c.roi = true
	case isa.MarkROIEnd:
		c.roi = false
		c.inIter = false
	case isa.MarkIterBegin:
		if !c.roi {
			return
		}
		c.inIter = true
		c.class = class
		c.iterStart = cycle
		for _, u := range c.units {
			st := &c.states[u]
			st.rec.Reset()
			st.evRec.Reset()
			st.prev.clear()
			st.resetProv()
		}
	case isa.MarkIterEnd:
		if !c.roi || !c.inIter {
			return
		}
		c.inIter = false
		keep := c.iterIdx >= c.dropFirst
		c.iterIdx++
		if !keep {
			return
		}
		c.iters = append(c.iters, IterSample{
			Class:  c.class,
			Cycles: cycle - c.iterStart,
		})
		keptIdx := int32(len(c.iters) - 1)
		for _, u := range c.units {
			st := &c.states[u]
			fullH, _ := st.rec.Hashes()
			st.full.ObserveFrom(c.class, fullH, &st.rec)
			st.iterHashes = append(st.iterHashes, fullH)
			evH, _ := st.evRec.Hashes()
			st.noT.ObserveFrom(c.class, evH, &st.evRec)
			st.foldRuns()
			st.flushProv(keptIdx)
		}
	}
}

// OnCycle samples one state row per unit and derives its timing-free
// event row: the values present this cycle that were absent the cycle
// before (newly arrived entries, changed states, issued requests). Each
// event becomes its own single-value row so that the event stream
// carries no per-cycle grouping (which would smuggle timing back into
// the "timing removed" view).
func (c *Collector) OnCycle(p *sim.Probe) {
	if !c.roi || !c.inIter {
		return
	}
	for _, u := range c.units {
		st := &c.states[u]
		row := sampleInto(u, p, st.row[:0])
		st.row = row
		// For the address-valued queue units, the TAGE prediction metadata
		// and the stride prefetch trackers the probe exposes a slot-aligned
		// PC row attributing each value to the instruction that produced
		// it. For the PC-valued units the
		// row is its own attribution; for the rest events are keyed by the
		// observed value and resolved through Attribution() afterwards.
		var pcRow []uint64
		switch {
		case u == SQADDR:
			pcRow = p.AppendStorePCs(st.pcRow[:0])
			st.pcRow = pcRow
		case u == LQADDR:
			pcRow = p.AppendLoadPCs(st.pcRow[:0])
			st.pcRow = pcRow
		case u == TAGEPRED:
			pcRow = p.AppendBPredPCs(st.pcRow[:0])
			st.pcRow = pcRow
		case u == SPFADDR:
			pcRow = p.AppendSPFPCs(st.pcRow[:0])
			st.pcRow = pcRow
		case st.kind == provDirect:
			pcRow = row
		}
		for i, v := range row {
			if v != 0 && !st.prev.contains(v) {
				st.evRec.AddValue(v)
				if st.kind != provNone {
					key := v
					if pcRow != nil {
						key = pcRow[i]
					}
					if key != 0 {
						st.provEvent(key, v)
					}
				}
			}
		}
		if st.timedRuns {
			st.updateRuns(row)
		}
		st.rec.AddRow(row)
		st.samples++
		st.prev.clear()
		for _, v := range row {
			if v != 0 {
				st.prev.insert(v)
			}
		}
	}
	for _, e := range p.StoreQueue() {
		if e.Valid {
			attribute(c.writers, e.Addr, e.PC)
		}
	}
	for _, e := range p.LoadQueue() {
		if e.Valid {
			attribute(c.readers, e.Addr, e.PC)
		}
	}
}

func attribute(m map[uint64]map[uint64]struct{}, addr, pc uint64) {
	set := m[addr]
	if set == nil {
		set = make(map[uint64]struct{}, 1)
		m[addr] = set
	}
	set[pc] = struct{}{}
}

// sampleInto appends the state row of one unit for the current cycle to
// dst, using the probe's allocation-free append views.
func sampleInto(u Unit, p *sim.Probe, dst []uint64) []uint64 {
	switch u {
	case SQADDR:
		return p.AppendStoreAddrs(dst)
	case SQPC:
		return p.AppendStorePCs(dst)
	case LQADDR:
		return p.AppendLoadAddrs(dst)
	case LQPC:
		return p.AppendLoadPCs(dst)
	case ROBOCPNCY:
		return append(dst, uint64(p.ROBOccupancy()))
	case ROBPC:
		return p.AppendROBPCs(dst)
	case LFBDATA:
		return p.AppendLFBData(dst)
	case LFBADDR:
		return p.AppendLFBAddrs(dst)
	case EUUALU:
		return p.AppendALUBusy(dst)
	case EUUADDRGEN:
		return p.AppendAGUBusy(dst)
	case EUUDIV:
		return p.AppendDivBusy(dst)
	case EUUMUL:
		return p.AppendMulBusy(dst)
	case NLPADDR:
		return p.AppendPrefetchAddrs(dst)
	case CACHEADDR:
		return p.AppendCacheRequests(dst)
	case TLBADDR:
		return p.AppendTLBPages(dst)
	case MSHRADDR:
		return p.AppendMSHRAddrs(dst)
	case TAGEPRED:
		return p.AppendBPredMeta(dst)
	case SPFADDR:
		return p.AppendSPFAddrs(dst)
	}
	return dst
}

// Results returns the per-unit snapshot evidence in tracked order.
func (c *Collector) Results() []UnitTrace {
	out := make([]UnitTrace, 0, len(c.units))
	for _, u := range c.units {
		st := &c.states[u]
		out = append(out, UnitTrace{
			Unit: u, Full: st.full, NoTiming: st.noT, IterHashes: st.iterHashes,
		})
	}
	return out
}

// SampleCounts returns, per tracked unit, the number of state rows
// sampled inside labeled iterations — the volume the snapshot pipeline
// ingested, surfaced as telemetry.
func (c *Collector) SampleCounts() map[Unit]uint64 {
	out := make(map[Unit]uint64, len(c.units))
	for _, u := range c.units {
		if n := c.states[u].samples; n > 0 {
			out[u] = n
		}
	}
	return out
}

// Iterations returns the kept iteration samples in execution order.
func (c *Collector) Iterations() []IterSample {
	out := make([]IterSample, len(c.iters))
	copy(out, c.iters)
	return out
}

// ProvStream is the per-iteration event evidence attributed to one key
// of one unit. For direct units the key is a program counter; for
// value-keyed units it is the observed value (a byte, line or page
// address) to be resolved through Attribution. Iters holds the kept
// iterations (indices into Iterations) during which the key saw at
// least one event, and Hashes the siphash digest of that iteration's
// event-value stream; iterations not listed implicitly hashed to
// EmptyStreamHash.
type ProvStream struct {
	Key    uint64
	Events uint64
	Iters  []int32
	Hashes []uint64
}

// UnitProvenance is the per-key provenance evidence of one unit.
type UnitProvenance struct {
	Unit    Unit
	Direct  bool // keys are PCs (no address resolution needed)
	Streams []ProvStream
}

// EmptyStreamHash is the implicit stream digest of a kept iteration
// during which a key saw no events.
func EmptyStreamHash() uint64 {
	var h siphash.Hasher
	h.Reset(siphash.DefaultKey)
	return h.Sum64()
}

// Provenance returns the per-unit, per-key event-stream evidence for
// instruction-level leakage attribution, deterministically ordered
// (units in tracked order, keys ascending). Units whose values carry no
// attributable key (ROB occupancy, fill-buffer data) are omitted.
func (c *Collector) Provenance() []UnitProvenance {
	out := make([]UnitProvenance, 0, len(c.units))
	for _, u := range c.units {
		st := &c.states[u]
		if st.kind == provNone {
			continue
		}
		byKey := make(map[uint64]*ProvStream, len(st.prov))
		keys := make([]uint64, 0, len(st.prov))
		for _, rec := range st.provLog {
			s := byKey[rec.key]
			if s == nil {
				s = &ProvStream{Key: rec.key, Events: st.prov[rec.key].events}
				byKey[rec.key] = s
				keys = append(keys, rec.key)
			}
			s.Iters = append(s.Iters, rec.iter)
			s.Hashes = append(s.Hashes, rec.hash)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		up := UnitProvenance{Unit: u, Direct: st.kind == provDirect}
		up.Streams = make([]ProvStream, 0, len(keys))
		for _, k := range keys {
			up.Streams = append(up.Streams, *byKey[k])
		}
		out = append(out, up)
	}
	return out
}

// Attribution returns the memory-access attribution gathered inside the
// region of interest: per address, the sorted PCs of the stores
// (writers) and loads (readers) that produced it.
func (c *Collector) Attribution() (writers, readers map[uint64][]uint64) {
	return flattenAttribution(c.writers), flattenAttribution(c.readers)
}

func flattenAttribution(m map[uint64]map[uint64]struct{}) map[uint64][]uint64 {
	out := make(map[uint64][]uint64, len(m))
	for addr, pcs := range m {
		list := make([]uint64, 0, len(pcs))
		for pc := range pcs {
			list = append(list, pc)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		out[addr] = list
	}
	return out
}
