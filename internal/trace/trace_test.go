package trace

import (
	"testing"

	"microsampler/internal/asm"
	"microsampler/internal/sim"
)

func runWithCollector(t *testing.T, src string, opts ...Option) *Collector {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := sim.New(sim.SmallBoom())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	col := NewCollector(opts...)
	m.SetTracer(col)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return col
}

const loopProgram = `
	.data
buf: .zero 64
	.text
_start:
	la   s4, buf
	li   s2, 6
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	sd   s2, 0(s4)
	ld   t0, 0(s4)
	mul  t1, t0, t0
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`

func TestUnitNames(t *testing.T) {
	want := map[Unit]string{
		SQADDR: "SQ-ADDR", ROBOCPNCY: "ROB-OCPNCY", LFBDATA: "LFB-Data",
		EUUADDRGEN: "EUU-ADDRGEN", NLPADDR: "NLP-ADDR", CACHEADDR: "Cache-ADDR",
	}
	for u, name := range want {
		if u.String() != name {
			t.Errorf("%d.String() = %q want %q", u, u.String(), name)
		}
	}
	if Unit(99).String() != "UNIT?" {
		t.Error("unknown unit should stringify as UNIT?")
	}
}

func TestAllUnitsComplete(t *testing.T) {
	units := AllUnits()
	if len(units) != 18 {
		t.Fatalf("AllUnits has %d entries, want Table IV's 16 plus TAGE-PRED and SPF-ADDR", len(units))
	}
	seen := make(map[Unit]bool)
	for _, u := range units {
		if seen[u] {
			t.Errorf("duplicate unit %v", u)
		}
		seen[u] = true
	}
}

func TestCollectorIterations(t *testing.T) {
	col := runWithCollector(t, loopProgram)
	iters := col.Iterations()
	if len(iters) != 6 {
		t.Fatalf("iterations = %d want 6", len(iters))
	}
	// s2 counts 6..1, parity 0,1,0,1,0,1.
	wantClasses := []uint64{0, 1, 0, 1, 0, 1}
	for i, it := range iters {
		if it.Class != wantClasses[i] {
			t.Errorf("iteration %d class = %d want %d", i, it.Class, wantClasses[i])
		}
		if it.Cycles <= 0 {
			t.Errorf("iteration %d has %d cycles", i, it.Cycles)
		}
	}
}

func TestCollectorWarmupDrop(t *testing.T) {
	col := runWithCollector(t, loopProgram, WithWarmupIterations(4))
	if got := len(col.Iterations()); got != 2 {
		t.Errorf("iterations after warmup drop = %d want 2", got)
	}
}

func TestCollectorUnitSubset(t *testing.T) {
	col := runWithCollector(t, loopProgram, WithUnits(SQADDR, EUUMUL))
	res := col.Results()
	if len(res) != 2 || res[0].Unit != SQADDR || res[1].Unit != EUUMUL {
		t.Fatalf("unexpected results: %+v", res)
	}
}

func TestCollectorCapturesActivity(t *testing.T) {
	col := runWithCollector(t, loopProgram)
	for _, ut := range col.Results() {
		if ut.Full.Unique() == 0 {
			t.Errorf("%v: no snapshots collected", ut.Unit)
		}
	}
	// The store and load queues must have observed the buffer address.
	for _, unit := range []Unit{SQADDR, LQADDR} {
		found := false
		for _, ut := range col.Results() {
			if ut.Unit != unit {
				continue
			}
			for _, e := range ut.Full.Entries() {
				for _, row := range e.Rep {
					for _, v := range row {
						if v != 0 {
							found = true
						}
					}
				}
			}
		}
		if !found {
			t.Errorf("%v: buffer address never observed", unit)
		}
	}
}

func TestCollectorIgnoresOutsideROI(t *testing.T) {
	src := `
	.text
_start:
	li   s2, 3
pre:
	iter.begin s2        # markers outside roi must be ignored
	iter.end
	addi s2, s2, -1
	bnez s2, pre
	roi.begin
	li   t0, 1
	iter.begin t0
	mul  t1, t0, t0
	iter.end
	roi.end
	li a0, 0
	li a7, 93
	ecall
`
	col := runWithCollector(t, src, WithWarmupIterations(0))
	if got := len(col.Iterations()); got != 1 {
		t.Errorf("iterations = %d want 1 (pre-ROI markers must not count)", got)
	}
}

func TestEventViewDropsPureTiming(t *testing.T) {
	// Two programs with identical event sequences but different
	// latencies between them (different div latency configs would be
	// ideal; here a dependent chain stretches timing): the full
	// snapshots must differ while the event view agrees.
	progFor := func(stretch string) string {
		return `
	.data
buf: .zero 64
	.text
_start:
	la   s4, buf
	roi.begin
	li   t0, 1
	iter.begin t0
	` + stretch + `
	sd   t0, 0(s4)
	iter.end
	roi.end
	li a0, 0
	li a7, 93
	ecall
`
	}
	colA := runWithCollector(t, progFor(""), WithWarmupIterations(0), WithUnits(SQADDR))
	colB := runWithCollector(t, progFor("mul t1, t0, t0\n\tmul t1, t1, t1\n\tmul t2, t1, t1"),
		WithWarmupIterations(0), WithUnits(SQADDR))
	fullA := colA.Results()[0].Full.Entries()[0].Hash
	fullB := colB.Results()[0].Full.Entries()[0].Hash
	evA := colA.Results()[0].NoTiming.Entries()[0].Hash
	evB := colB.Results()[0].NoTiming.Entries()[0].Hash
	if fullA == fullB {
		t.Error("full snapshots should differ (different iteration lengths)")
	}
	if evA != evB {
		t.Error("event view should be identical (same store, same address)")
	}
}

// TestCollectorIterHashes checks the per-iteration hash sequence that
// feeds the leakage heatmap: one hash per kept iteration per unit,
// aligned with Iterations(), and consistent with the deduplicated
// store (the multiset of sequence hashes equals the store's counts).
func TestCollectorIterHashes(t *testing.T) {
	col := runWithCollector(t, loopProgram, WithWarmupIterations(1))
	iters := col.Iterations()
	if len(iters) == 0 {
		t.Fatal("no iterations")
	}
	for _, ut := range col.Results() {
		if len(ut.IterHashes) != len(iters) {
			t.Fatalf("%v: %d iter hashes for %d iterations",
				ut.Unit, len(ut.IterHashes), len(iters))
		}
		seqCounts := map[uint64]int{}
		for _, h := range ut.IterHashes {
			seqCounts[h]++
		}
		storeCounts := map[uint64]int{}
		for _, e := range ut.Full.Entries() {
			storeCounts[e.Hash] += e.Total()
		}
		if len(seqCounts) != len(storeCounts) {
			t.Fatalf("%v: %d distinct sequence hashes vs %d store entries",
				ut.Unit, len(seqCounts), len(storeCounts))
		}
		for h, n := range seqCounts {
			if storeCounts[h] != n {
				t.Errorf("%v: hash %#x seen %d times in sequence, %d in store",
					ut.Unit, h, n, storeCounts[h])
			}
		}
	}
}
