// Package version exposes the build identity the go toolchain bakes
// into every binary — module version, VCS revision, dirty flag — as one
// shared surface: the cmds' -version flags, the Prometheus
// *_build_info gauges, and the default label under which runs are filed
// in the history store all read from here, so a verdict recorded today
// can be correlated with the exact commit that produced it.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"

	"microsampler/internal/telemetry"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module version; source builds report
	// "(devel)".
	Version string
	// GoVersion is the toolchain that built (or is running) the binary.
	GoVersion string
	// Revision is the full VCS commit hash. Empty when the binary
	// carries no VCS stamp: `go run`, or a build outside a checkout.
	Revision string
	// Dirty marks a build from a checkout with uncommitted changes.
	Dirty bool
}

var (
	once   sync.Once
	cached Info
)

// Get reads the build identity once and caches it for the process.
func Get() Info {
	once.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			cached = Info{Version: "(devel)", GoVersion: runtime.Version()}
			return
		}
		cached = fromBuildInfo(bi)
	})
	return cached
}

// fromBuildInfo distils a runtime build-info dump; split out so tests
// can exercise the parsing without controlling how the test binary was
// built.
func fromBuildInfo(bi *debug.BuildInfo) Info {
	i := Info{Version: bi.Main.Version, GoVersion: runtime.Version()}
	if i.Version == "" {
		i.Version = "(devel)"
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			i.Revision = s.Value
		case "vcs.modified":
			i.Dirty = s.Value == "true"
		}
	}
	return i
}

// ShortRevision is the 12-character commit prefix, or "unknown" for
// builds without a VCS stamp.
func (i Info) ShortRevision() string {
	if i.Revision == "" {
		return "unknown"
	}
	if len(i.Revision) > 12 {
		return i.Revision[:12]
	}
	return i.Revision
}

// Line renders the identity the way the cmds' -version flags print it.
func (i Info) Line(cmd string) string {
	s := fmt.Sprintf("%s %s %s commit %s", cmd, i.Version, i.GoVersion, i.ShortRevision())
	if i.Dirty {
		s += " (dirty)"
	}
	return s
}

// DefaultLabel is the history label used when the caller provides
// none: the short VCS revision, "-dirty" suffixed for modified trees.
// Binaries without a VCS stamp (`go run`) fall back to "unlabeled" —
// CI gates that care should pass an explicit -label.
func DefaultLabel() string {
	i := Get()
	if i.Revision == "" {
		return "unlabeled"
	}
	label := i.ShortRevision()
	if i.Dirty {
		label += "-dirty"
	}
	return label
}

// Gauge registers the constant build-info gauge (value 1) under name,
// carrying the identity as Prometheus labels. The telemetry registry
// keys metrics by free-form name and its renderer passes a trailing
// {...} label block through verbatim, so the label set rides inside the
// metric name.
func Gauge(reg *telemetry.Registry, name string) {
	i := Get()
	reg.Gauge(fmt.Sprintf(`%s{version=%q,goversion=%q,revision=%q,dirty=%q}`,
		name, i.Version, i.GoVersion, i.Revision, strconv.FormatBool(i.Dirty))).Set(1)
}
