package version

import (
	"runtime/debug"
	"strings"
	"testing"

	"microsampler/internal/telemetry"
)

func stamped(rev, modified string) *debug.BuildInfo {
	bi := &debug.BuildInfo{}
	bi.Main.Version = "v1.2.3"
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: rev},
		{Key: "vcs.modified", Value: modified},
	}
	return bi
}

func TestFromBuildInfo(t *testing.T) {
	i := fromBuildInfo(stamped("0123456789abcdef0123", "true"))
	if i.Version != "v1.2.3" || i.Revision != "0123456789abcdef0123" || !i.Dirty {
		t.Fatalf("parsed %+v", i)
	}
	if i.ShortRevision() != "0123456789ab" {
		t.Fatalf("short revision %q", i.ShortRevision())
	}
	if i.GoVersion == "" {
		t.Fatal("go version missing")
	}

	empty := fromBuildInfo(&debug.BuildInfo{})
	if empty.Version != "(devel)" || empty.Revision != "" || empty.Dirty {
		t.Fatalf("empty build info parsed as %+v", empty)
	}
	if empty.ShortRevision() != "unknown" {
		t.Fatalf("unstamped short revision %q", empty.ShortRevision())
	}
}

func TestLine(t *testing.T) {
	i := fromBuildInfo(stamped("0123456789abcdef0123", "true"))
	line := i.Line("msd")
	for _, want := range []string{"msd ", "v1.2.3", "commit 0123456789ab", "(dirty)"} {
		if !strings.Contains(line, want) {
			t.Errorf("Line() = %q, missing %q", line, want)
		}
	}
	clean := fromBuildInfo(stamped("0123456789abcdef0123", "false"))
	if strings.Contains(clean.Line("msd"), "dirty") {
		t.Errorf("clean build renders dirty: %q", clean.Line("msd"))
	}
}

func TestGetAndDefaultLabelStable(t *testing.T) {
	// The test binary may or may not carry a VCS stamp; assert the
	// invariants that hold either way.
	a, b := Get(), Get()
	if a != b {
		t.Fatalf("Get not stable: %+v vs %+v", a, b)
	}
	label := DefaultLabel()
	if label == "" {
		t.Fatal("empty default label")
	}
	if a.Revision == "" && label != "unlabeled" {
		t.Fatalf("unstamped binary labeled %q", label)
	}
}

func TestGaugeRendersLabels(t *testing.T) {
	reg := telemetry.NewRegistry()
	Gauge(reg, "msd_build_info")
	text := reg.Snapshot().Prometheus()
	if !strings.Contains(text, "msd_build_info{version=") {
		t.Fatalf("build info gauge missing labels:\n%s", text)
	}
	if !strings.Contains(text, `dirty="`) || !strings.Contains(text, `revision="`) {
		t.Fatalf("label set incomplete:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE msd_build_info gauge") {
		t.Fatalf("family header carries labels or is missing:\n%s", text)
	}
}
