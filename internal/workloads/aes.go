package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

// The AES case studies extend the paper's crypto-primitive portfolio
// with the canonical cache side-channel target:
//
//   - AES-TTABLE: classic T-table AES-128. The table indices are
//     functions of key and plaintext bytes, so load addresses, cache
//     requests and (under cache pressure) miss-handling state all
//     separate the two candidate keys.
//   - AES-PRELOAD: the same kernel hardened with the well-known
//     countermeasure of touching every Te0 line before the rounds.
//     The residency channel (MSHR/LFB/prefetcher state) closes — but
//     MicroSampler still flags the load addresses themselves, showing
//     that preloading does not make table lookups data-oblivious.
//
// Each run fixes a random plaintext and two candidate keys differing in
// one byte; iterations alternate between the keys (the class label), a
// key-distinguishing experiment in the style of the paper's per-key-bit
// labeling. Every encryption is checked against a Go reference that is
// itself validated against crypto/aes.
const aesIters = 32

// aesWordAsm emits the T-table combination for one output word:
// dst = Te0[x>>24] ^ Te1[y>>16&ff] ^ Te2[z>>8&ff] ^ Te3[w&ff] ^ rk[rkOff]
// Sources are registers among t3..t6; dst among a2..a5; t0/t1 scratch;
// a0 is the current round-key pointer.
func aesWordAsm(dst, x, y, z, w string, rkOff int) string {
	return fmt.Sprintf(`	srli t0, %[2]s, 24
	slli t0, t0, 2
	add  t0, s2, t0
	lwu  %[1]s, 0(t0)
	srli t0, %[3]s, 16
	andi t0, t0, 0xFF
	slli t0, t0, 2
	add  t0, s3, t0
	lwu  t1, 0(t0)
	xor  %[1]s, %[1]s, t1
	srli t0, %[4]s, 8
	andi t0, t0, 0xFF
	slli t0, t0, 2
	add  t0, s4, t0
	lwu  t1, 0(t0)
	xor  %[1]s, %[1]s, t1
	andi t0, %[5]s, 0xFF
	slli t0, t0, 2
	add  t0, s5, t0
	lwu  t1, 0(t0)
	xor  %[1]s, %[1]s, t1
	lwu  t1, %[6]d(a0)
	xor  %[1]s, %[1]s, t1
`, dst, x, y, z, w, rkOff)
}

// aesFinalWordAsm emits one final-round word via S-box lookups.
func aesFinalWordAsm(dst, x, y, z, w string, rkOff int) string {
	return fmt.Sprintf(`	srli t0, %[2]s, 24
	add  t0, s6, t0
	lbu  %[1]s, 0(t0)
	slli %[1]s, %[1]s, 24
	srli t0, %[3]s, 16
	andi t0, t0, 0xFF
	add  t0, s6, t0
	lbu  t1, 0(t0)
	slli t1, t1, 16
	or   %[1]s, %[1]s, t1
	srli t0, %[4]s, 8
	andi t0, t0, 0xFF
	add  t0, s6, t0
	lbu  t1, 0(t0)
	slli t1, t1, 8
	or   %[1]s, %[1]s, t1
	andi t0, %[5]s, 0xFF
	add  t0, s6, t0
	lbu  t1, 0(t0)
	or   %[1]s, %[1]s, t1
	lwu  t1, %[6]d(a0)
	xor  %[1]s, %[1]s, t1
`, dst, x, y, z, w, rkOff)
}

// aesEncryptAsm emits the aes_encrypt function. With preload set, every
// Te0 cache line is touched before the rounds (the countermeasure).
// Register contract: s2..s5 = Te0..Te3 bases, s6 = sbox base,
// s7 = plaintext words; a0 = round-key pointer; clobbers t0-t6, a1-a5.
func aesEncryptAsm(preload bool) string {
	var b strings.Builder
	b.WriteString("aes_encrypt:\n")
	if preload {
		b.WriteString(`	mv   t0, s2          # preload all Te0 lines
	li   t1, 16
ae_preload:
	lwu  t2, 0(t0)
	addi t0, t0, 64
	addi t1, t1, -1
	bnez t1, ae_preload
`)
	}
	b.WriteString(`	lwu  t3, 0(s7)       # state = plaintext ^ rk[0..3]
	lwu  t4, 4(s7)
	lwu  t5, 8(s7)
	lwu  t6, 12(s7)
	lwu  t0, 0(a0)
	xor  t3, t3, t0
	lwu  t0, 4(a0)
	xor  t4, t4, t0
	lwu  t0, 8(a0)
	xor  t5, t5, t0
	lwu  t0, 12(a0)
	xor  t6, t6, t0
	addi a0, a0, 16
	li   a1, 9
ae_round:
`)
	b.WriteString(aesWordAsm("a2", "t3", "t4", "t5", "t6", 0))
	b.WriteString(aesWordAsm("a3", "t4", "t5", "t6", "t3", 4))
	b.WriteString(aesWordAsm("a4", "t5", "t6", "t3", "t4", 8))
	b.WriteString(aesWordAsm("a5", "t6", "t3", "t4", "t5", 12))
	b.WriteString(`	mv   t3, a2
	mv   t4, a3
	mv   t5, a4
	mv   t6, a5
	addi a0, a0, 16
	addi a1, a1, -1
	bnez a1, ae_round
`)
	b.WriteString(aesFinalWordAsm("a2", "t3", "t4", "t5", "t6", 0))
	b.WriteString(aesFinalWordAsm("a3", "t4", "t5", "t6", "t3", 4))
	b.WriteString(aesFinalWordAsm("a4", "t5", "t6", "t3", "t4", 8))
	b.WriteString(aesFinalWordAsm("a5", "t6", "t3", "t4", "t5", 12))
	b.WriteString(`	slli a3, a3, 32
	or   a0, a2, a3      # pack ct words
	slli a5, a5, 32
	or   a1, a4, a5
	ret
`)
	return b.String()
}

// aesDriver emits the whole program.
func aesDriver(preload bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\t.equ N, %d\n\t.text\n", aesIters)
	b.WriteString(`_start:
	la   s2, te0
	la   s3, te1
	la   s4, te2
	la   s5, te3
	la   s6, sbox
	la   s7, pt_words
	call sweep            # warmup pass
	roi.begin
	call sweep
	roi.end
	la   t0, expected
	ld   t0, 0(t0)
	sub  a0, a0, t0
	snez a0, a0
	j    do_exit

sweep:                    # returns checksum in a0
	addi sp, sp, -16
	sd   ra, 8(sp)
	li   s8, 0
	li   s9, 0
sw_loop:
	# Ambient cache pressure: evict all Te0 lines between encryptions,
	# so residency-dependent state stays live (same role as the flushes
	# in the modexp studies; see DESIGN.md).
	mv   t2, s2
	li   t3, 16
sw_flush:
	cbo.flush (t2)
	addi t2, t2, 64
	addi t3, t3, -1
	bnez t3, sw_flush
	andi t0, s8, 1        # class: which candidate key
	li   t1, 176
	mul  t1, t0, t1
	la   t2, rks
	add  t2, t2, t1
	iter.begin t0
	mv   a0, t2
	call aes_encrypt
	iter.end
	slli t0, s9, 1
	srli t1, s9, 63
	or   s9, t0, t1
	xor  s9, s9, a0       # checksum
	slli t0, s9, 1
	srli t1, s9, 63
	or   s9, t0, t1
	xor  s9, s9, a1
	addi s8, s8, 1
	li   t0, N
	bltu s8, t0, sw_loop
	mv   a0, s9
	ld   ra, 8(sp)
	addi sp, sp, 16
	ret
`)
	b.WriteString(aesEncryptAsm(preload))
	b.WriteString(exitSequence)
	b.WriteString("\n\t.data\nexpected: .dword 0\npt_words: .zero 16\nrks: .zero 352\n")
	for t := 0; t < 4; t++ {
		fmt.Fprintf(&b, "\t.align 6\nte%d:\n", t)
		for i := 0; i < 256; i += 8 {
			b.WriteString("\t.word ")
			for j := 0; j < 8; j++ {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%d", int64(aesTe[t][i+j]))
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("\t.align 6\nsbox:\n")
	for i := 0; i < 256; i += 16 {
		b.WriteString("\t.byte ")
		for j := 0; j < 16; j++ {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", aesSbox[i+j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// aesSetup writes the per-run plaintext, the two candidate keys' round
// keys and the reference checksum.
func aesSetup(run int, m *sim.Machine, prog *asm.Program) error {
	rng := rand.New(rand.NewSource(0xAE5_0000 + int64(run)))
	mem := m.Memory()

	var pt, keyA [16]byte
	rng.Read(pt[:])
	rng.Read(keyA[:])
	keyB := keyA
	keyB[0] ^= 0x40 // flip an index bit that selects a different Te line

	ptWords := wordsFromBlock(pt)
	base, ok := prog.Symbol("pt_words")
	if !ok {
		return fmt.Errorf("aes: symbol pt_words missing")
	}
	for i, w := range ptWords {
		mem.Write(base+uint64(4*i), 4, uint64(w))
	}

	rks := [2][44]uint32{aesKeyExpand(keyA), aesKeyExpand(keyB)}
	rkBase := prog.MustSymbol("rks")
	for k := 0; k < 2; k++ {
		for i, w := range rks[k] {
			mem.Write(rkBase+uint64(176*k+4*i), 4, uint64(w))
		}
	}

	checksum := uint64(0)
	for i := 0; i < aesIters; i++ {
		ct := aesEncryptRef(&rks[i&1], ptWords)
		lo := uint64(ct[0]) | uint64(ct[1])<<32
		hi := uint64(ct[2]) | uint64(ct[3])<<32
		checksum = checksum<<1 | checksum>>63
		checksum ^= lo
		checksum = checksum<<1 | checksum>>63
		checksum ^= hi
	}
	mem.Write(prog.MustSymbol("expected"), 8, checksum)
	return nil
}

func aesWorkload(name string, preload bool) (core.Workload, error) {
	w := core.Workload{
		Name:   name,
		Source: aesDriver(preload),
		Setup:  aesSetup,
	}
	if _, err := asm.Assemble(w.Source); err != nil {
		return core.Workload{}, fmt.Errorf("%s: %w", name, err)
	}
	return w, nil
}

// AESTTable is the classic T-table AES-128 key-distinguishing study.
func AESTTable() (core.Workload, error) { return aesWorkload("AES-TTABLE", false) }

// AESPreload is the same kernel with the table-preload countermeasure.
func AESPreload() (core.Workload, error) { return aesWorkload("AES-PRELOAD", true) }
