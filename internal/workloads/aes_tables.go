package workloads

// AES-128 building blocks: S-box construction, T-tables and key
// expansion, plus a table-based reference encryption that mirrors the
// assembly kernels word for word. The reference is validated against
// crypto/aes in the tests, so the simulated kernels are transitively
// checked against the standard.

// aesSbox is computed from the AES definition (multiplicative inverse
// in GF(2^8) followed by the affine transform) rather than pasted, so
// the construction itself is under test.
var aesSbox = buildSbox()

// aesTe holds the four encryption T-tables.
var aesTe = buildTe()

func gfMul(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 == 1 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

func gfInv(a byte) byte {
	if a == 0 {
		return 0
	}
	// a^254 in GF(2^8) via square-and-multiply.
	result := byte(1)
	base := a
	for e := 254; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = gfMul(result, base)
		}
		base = gfMul(base, base)
	}
	return result
}

func buildSbox() [256]byte {
	var sb [256]byte
	for i := 0; i < 256; i++ {
		x := gfInv(byte(i))
		// Affine transform: x ^ rotl(x,1) ^ rotl(x,2) ^ rotl(x,3) ^
		// rotl(x,4) ^ 0x63.
		y := x
		for r := 1; r <= 4; r++ {
			y ^= x<<r | x>>(8-r)
		}
		sb[i] = y ^ 0x63
	}
	return sb
}

func buildTe() [4][256]uint32 {
	var te [4][256]uint32
	for i := 0; i < 256; i++ {
		s := aesSbox[i]
		s2 := gfMul(s, 2)
		s3 := gfMul(s, 3)
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te[0][i] = w
		te[1][i] = w>>8 | w<<24
		te[2][i] = w>>16 | w<<16
		te[3][i] = w>>24 | w<<8
	}
	return te
}

// aesKeyExpand expands a 16-byte key into the 44 round-key words.
func aesKeyExpand(key [16]byte) [44]uint32 {
	var rk [44]uint32
	for i := 0; i < 4; i++ {
		rk[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 |
			uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1)
	for i := 4; i < 44; i++ {
		t := rk[i-1]
		if i%4 == 0 {
			t = t<<8 | t>>24 // RotWord
			t = uint32(aesSbox[t>>24])<<24 | uint32(aesSbox[t>>16&0xFF])<<16 |
				uint32(aesSbox[t>>8&0xFF])<<8 | uint32(aesSbox[t&0xFF])
			t ^= rcon << 24
			rcon = uint32(gfMul(byte(rcon), 2))
		}
		rk[i] = rk[i-4] ^ t
	}
	return rk
}

// aesEncryptRef encrypts one block with the T-table formulation the
// assembly kernels use; s holds the four big-endian state words.
func aesEncryptRef(rk *[44]uint32, s [4]uint32) [4]uint32 {
	s0 := s[0] ^ rk[0]
	s1 := s[1] ^ rk[1]
	s2 := s[2] ^ rk[2]
	s3 := s[3] ^ rk[3]
	for r := 1; r <= 9; r++ {
		t0 := aesTe[0][s0>>24] ^ aesTe[1][s1>>16&0xFF] ^
			aesTe[2][s2>>8&0xFF] ^ aesTe[3][s3&0xFF] ^ rk[4*r]
		t1 := aesTe[0][s1>>24] ^ aesTe[1][s2>>16&0xFF] ^
			aesTe[2][s3>>8&0xFF] ^ aesTe[3][s0&0xFF] ^ rk[4*r+1]
		t2 := aesTe[0][s2>>24] ^ aesTe[1][s3>>16&0xFF] ^
			aesTe[2][s0>>8&0xFF] ^ aesTe[3][s1&0xFF] ^ rk[4*r+2]
		t3 := aesTe[0][s3>>24] ^ aesTe[1][s0>>16&0xFF] ^
			aesTe[2][s1>>8&0xFF] ^ aesTe[3][s2&0xFF] ^ rk[4*r+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
	}
	sub := func(a, b, c, d uint32) uint32 {
		return uint32(aesSbox[a>>24])<<24 | uint32(aesSbox[b>>16&0xFF])<<16 |
			uint32(aesSbox[c>>8&0xFF])<<8 | uint32(aesSbox[d&0xFF])
	}
	return [4]uint32{
		sub(s0, s1, s2, s3) ^ rk[40],
		sub(s1, s2, s3, s0) ^ rk[41],
		sub(s2, s3, s0, s1) ^ rk[42],
		sub(s3, s0, s1, s2) ^ rk[43],
	}
}

// wordsFromBlock packs 16 bytes into four big-endian state words.
func wordsFromBlock(b [16]byte) [4]uint32 {
	var s [4]uint32
	for i := 0; i < 4; i++ {
		s[i] = uint32(b[4*i])<<24 | uint32(b[4*i+1])<<16 |
			uint32(b[4*i+2])<<8 | uint32(b[4*i+3])
	}
	return s
}

// blockFromWords unpacks four big-endian state words into 16 bytes.
func blockFromWords(s [4]uint32) [16]byte {
	var b [16]byte
	for i := 0; i < 4; i++ {
		b[4*i] = byte(s[i] >> 24)
		b[4*i+1] = byte(s[i] >> 16)
		b[4*i+2] = byte(s[i] >> 8)
		b[4*i+3] = byte(s[i])
	}
	return b
}
