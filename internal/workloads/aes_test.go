package workloads

import (
	"bytes"
	"crypto/aes"
	"math/rand"
	"testing"

	"microsampler/internal/asm"
	"microsampler/internal/sim"
)

// TestSboxMatchesKnownValues checks the constructed S-box against the
// published corner values of FIPS-197.
func TestSboxMatchesKnownValues(t *testing.T) {
	known := map[int]byte{
		0x00: 0x63, 0x01: 0x7C, 0x10: 0xCA, 0x53: 0xED,
		0x7F: 0xD2, 0x80: 0xCD, 0xFF: 0x16, 0xAA: 0xAC,
	}
	for in, want := range known {
		if got := aesSbox[in]; got != want {
			t.Errorf("sbox[%#x] = %#x want %#x", in, got, want)
		}
	}
}

// TestAESRefMatchesStdlib validates the T-table reference encryption
// against crypto/aes over random keys and plaintexts, which transitively
// validates the table construction and key expansion.
func TestAESRefMatchesStdlib(t *testing.T) {
	const seed = 99
	t.Logf("rng seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 50; trial++ {
		var key, pt [16]byte
		rng.Read(key[:])
		rng.Read(pt[:])

		block, err := aes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 16)
		block.Encrypt(want, pt[:])

		rk := aesKeyExpand(key)
		got := blockFromWords(aesEncryptRef(&rk, wordsFromBlock(pt)))
		if !bytes.Equal(got[:], want) {
			t.Fatalf("trial %d: ref AES mismatch\nkey %x\npt  %x\ngot %x\nwant %x",
				trial, key, pt, got, want)
		}
	}
}

// TestFIPS197Vector checks the FIPS-197 appendix example.
func TestFIPS197Vector(t *testing.T) {
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := [16]byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
		0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	want := [16]byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
		0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}
	rk := aesKeyExpand(key)
	got := blockFromWords(aesEncryptRef(&rk, wordsFromBlock(pt)))
	if got != want {
		t.Fatalf("FIPS-197: got %x want %x", got, want)
	}
}

func TestGFMul(t *testing.T) {
	tests := []struct{ a, b, want byte }{
		{0x57, 0x83, 0xc1},
		{0x57, 0x13, 0xfe},
		{0x02, 0x80, 0x1b},
		{0x01, 0xab, 0xab},
		{0x00, 0x55, 0x00},
	}
	for _, tt := range tests {
		if got := gfMul(tt.a, tt.b); got != tt.want {
			t.Errorf("gfMul(%#x, %#x) = %#x want %#x", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestGFInv(t *testing.T) {
	for i := 1; i < 256; i++ {
		if gfMul(byte(i), gfInv(byte(i))) != 1 {
			t.Fatalf("gfInv(%#x) is not an inverse", i)
		}
	}
	if gfInv(0) != 0 {
		t.Error("gfInv(0) must be 0 by AES convention")
	}
}

// TestAESKernelsComputeCorrectly runs both AES variants on the core;
// their embedded checksum check compares against the Go reference.
func TestAESKernelsComputeCorrectly(t *testing.T) {
	for _, name := range []string{"AES-TTABLE", "AES-PRELOAD"} {
		t.Run(name, func(t *testing.T) {
			w, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			runOnce(t, w, sim.MegaBoom())
		})
	}
}

func TestAESSetupKeysDiffer(t *testing.T) {
	w, err := AESTTable()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := sim.New(sim.SmallBoom())
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(0, m, prog); err != nil {
		t.Fatal(err)
	}
	rk := prog.MustSymbol("rks")
	a := m.Memory().Read(rk, 4)
	b := m.Memory().Read(rk+176, 4)
	if a == b {
		t.Error("candidate keys' first round-key words must differ")
	}
	if a>>24^b>>24 != 0x40 && a^b != 0x40<<24 {
		t.Logf("first words differ: %#x vs %#x", a, b)
	}
}

// TestChaChaRefRFC8439 checks the reference block function against the
// RFC 8439 section 2.3.2 test vector.
func TestChaChaRefRFC8439(t *testing.T) {
	var key [8]uint32
	for i := range key {
		key[i] = uint32(4*i) | uint32(4*i+1)<<8 | uint32(4*i+2)<<16 | uint32(4*i+3)<<24
	}
	nonce := [3]uint32{0x09000000, 0x4a000000, 0x00000000}
	state := chachaState(key, 1, nonce)
	out := chachaRef(state)
	want := [16]uint32{
		0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3,
		0xc7f4d1c7, 0x0368c033, 0x9aaa2204, 0x4e6cd4c3,
		0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9,
		0xd19c12b5, 0xb94e16de, 0xe883d0cb, 0x4e3c50a2,
	}
	if out != want {
		t.Fatalf("RFC 8439 vector mismatch:\ngot  %08x\nwant %08x", out, want)
	}
}

func TestChaChaKernelComputesCorrectly(t *testing.T) {
	w, err := ChaCha20()
	if err != nil {
		t.Fatal(err)
	}
	runOnce(t, w, sim.MegaBoom())
	runOnce(t, w, sim.SmallBoom())
}
