package workloads

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

// CHACHA20 is the positive counterpart to the AES study: an ARX cipher
// (add/rotate/xor, no tables, no secret-dependent control flow) that is
// constant-time by construction. Run as the same two-candidate-key
// distinguishing experiment as AES-TTABLE, no microarchitectural unit
// should separate the keys.
const chachaIters = 24

// chachaQR emits one ChaCha quarter round on the four named registers.
// Upper register bits may hold garbage: every operation reads only the
// low 32 bits (addw/slliw/srliw), and xor preserves the low half, so the
// working words stay correct modulo 2^32 throughout.
func chachaQR(a, b, c, d string) string {
	rot := func(r string, n int) string {
		return fmt.Sprintf(`	slliw t0, %[1]s, %[2]d
	srliw t1, %[1]s, %[3]d
	or   %[1]s, t0, t1
`, r, n, 32-n)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "\taddw %s, %s, %s\n\txor  %s, %s, %s\n", a, a, b, d, d, a)
	sb.WriteString(rot(d, 16))
	fmt.Fprintf(&sb, "\taddw %s, %s, %s\n\txor  %s, %s, %s\n", c, c, d, b, b, c)
	sb.WriteString(rot(b, 12))
	fmt.Fprintf(&sb, "\taddw %s, %s, %s\n\txor  %s, %s, %s\n", a, a, b, d, d, a)
	sb.WriteString(rot(d, 8))
	fmt.Fprintf(&sb, "\taddw %s, %s, %s\n\txor  %s, %s, %s\n", c, c, d, b, b, c)
	sb.WriteString(rot(b, 7))
	return sb.String()
}

// chachaRegs maps ChaCha state words 0..15 onto registers.
var chachaRegs = []string{
	"s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
	"s10", "s11", "a2", "a3", "a4", "a5", "a6", "a7",
}

// chachaBlockAsm emits chacha_block(a0 = 16-word input state,
// a1 = 16-word output): 20 rounds plus the feed-forward addition.
func chachaBlockAsm() string {
	var b strings.Builder
	b.WriteString("chacha_block:\n")
	for i, r := range chachaRegs {
		fmt.Fprintf(&b, "\tlwu  %s, %d(a0)\n", r, 4*i)
	}
	b.WriteString("\tli   t3, 10\ncb_round:\n")
	qr := func(a, bb, c, d int) {
		b.WriteString(chachaQR(chachaRegs[a], chachaRegs[bb], chachaRegs[c], chachaRegs[d]))
	}
	// Column round.
	qr(0, 4, 8, 12)
	qr(1, 5, 9, 13)
	qr(2, 6, 10, 14)
	qr(3, 7, 11, 15)
	// Diagonal round.
	qr(0, 5, 10, 15)
	qr(1, 6, 11, 12)
	qr(2, 7, 8, 13)
	qr(3, 4, 9, 14)
	b.WriteString("\taddi t3, t3, -1\n\tbnez t3, cb_round\n")
	for i, r := range chachaRegs {
		fmt.Fprintf(&b, "\tlwu  t0, %d(a0)\n\taddw %s, %s, t0\n\tsw   %s, %d(a1)\n",
			4*i, r, r, r, 4*i)
	}
	b.WriteString("\tret\n")
	return b.String()
}

// chachaDriver builds the distinguishing-experiment program.
func chachaDriver() string {
	return fmt.Sprintf(`	.equ N, %d
	.text
_start:
	call sweep            # warmup
	roi.begin
	call sweep
	roi.end
	la   t0, expected
	ld   t0, 0(t0)
	sub  a0, a0, t0
	snez a0, a0
	j    do_exit

sweep:                    # returns checksum in a0
	addi sp, sp, -32
	sd   ra, 24(sp)
	sd   s0, 16(sp)
	li   s0, 0            # i
	li   t4, 0            # checksum lives in memory across calls
	la   t0, cksum
	sd   t4, 0(t0)
sw_loop:
	andi t0, s0, 1        # class: which candidate key state
	li   t1, 64
	mul  t1, t0, t1
	la   t2, states
	add  t2, t2, t1
	la   t5, curstate     # stage into the fixed working buffer, so the
	li   t6, 8            # input address is class-independent
cp_loop:
	ld   t1, 0(t2)
	sd   t1, 0(t5)
	addi t2, t2, 8
	addi t5, t5, 8
	addi t6, t6, -1
	bnez t6, cp_loop
	fence
	la   a0, curstate
	la   a1, outblk
	iter.begin t0
	call chacha_block
	iter.end
	fence                 # stop the next pair's staging loads from
	                      # dispatching before this window closes
	la   t0, cksum
	ld   t4, 0(t0)
	la   a1, outblk
	li   t5, 8
ck_loop:
	ld   t6, 0(a1)
	slli t1, t4, 1
	srli t2, t4, 63
	or   t4, t1, t2
	xor  t4, t4, t6
	addi a1, a1, 8
	addi t5, t5, -1
	bnez t5, ck_loop
	la   t0, cksum
	sd   t4, 0(t0)
	addi s0, s0, 1
	li   t0, N
	bltu s0, t0, sw_loop
	la   t0, cksum
	ld   a0, 0(t0)
	ld   s0, 16(sp)
	ld   ra, 24(sp)
	addi sp, sp, 32
	ret
%s%s
	.data
expected: .dword 0
cksum:    .dword 0
	.align 6
states:   .zero 128
	.align 6
curstate: .zero 64
	.align 6
outblk:   .zero 64
`, chachaIters, chachaBlockAsm(), exitSequence)
}

// chachaRef computes one ChaCha20 block from a 16-word state.
func chachaRef(state [16]uint32) [16]uint32 {
	w := state
	qr := func(a, b, c, d int) {
		w[a] += w[b]
		w[d] = bits.RotateLeft32(w[d]^w[a], 16)
		w[c] += w[d]
		w[b] = bits.RotateLeft32(w[b]^w[c], 12)
		w[a] += w[b]
		w[d] = bits.RotateLeft32(w[d]^w[a], 8)
		w[c] += w[d]
		w[b] = bits.RotateLeft32(w[b]^w[c], 7)
	}
	for r := 0; r < 10; r++ {
		qr(0, 4, 8, 12)
		qr(1, 5, 9, 13)
		qr(2, 6, 10, 14)
		qr(3, 7, 11, 15)
		qr(0, 5, 10, 15)
		qr(1, 6, 11, 12)
		qr(2, 7, 8, 13)
		qr(3, 4, 9, 14)
	}
	for i := range w {
		w[i] += state[i]
	}
	return w
}

// chachaState builds the RFC 8439 initial state.
func chachaState(key [8]uint32, counter uint32, nonce [3]uint32) [16]uint32 {
	return [16]uint32{
		0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
		key[0], key[1], key[2], key[3], key[4], key[5], key[6], key[7],
		counter, nonce[0], nonce[1], nonce[2],
	}
}

func chachaSetup(run int, m *sim.Machine, prog *asm.Program) error {
	rng := rand.New(rand.NewSource(0xC4AC4A + int64(run)))
	mem := m.Memory()
	var keyA, keyB [8]uint32
	for i := range keyA {
		keyA[i] = rng.Uint32()
		keyB[i] = keyA[i]
	}
	keyB[0] ^= 0x40 // the same single-byte key difference as AES
	var nonce [3]uint32
	for i := range nonce {
		nonce[i] = rng.Uint32()
	}
	states := [2][16]uint32{
		chachaState(keyA, 1, nonce),
		chachaState(keyB, 1, nonce),
	}
	base, ok := prog.Symbol("states")
	if !ok {
		return fmt.Errorf("chacha: symbol states missing")
	}
	for k := 0; k < 2; k++ {
		for i, w := range states[k] {
			mem.Write(base+uint64(64*k+4*i), 4, uint64(w))
		}
	}
	checksum := uint64(0)
	for i := 0; i < chachaIters; i++ {
		out := chachaRef(states[i&1])
		for j := 0; j < 8; j++ {
			dw := uint64(out[2*j]) | uint64(out[2*j+1])<<32
			checksum = checksum<<1 | checksum>>63
			checksum ^= dw
		}
	}
	mem.Write(prog.MustSymbol("expected"), 8, checksum)
	return nil
}

// ChaCha20 is the ARX distinguishing experiment: constant-time by
// construction, expected clean on every unit.
func ChaCha20() (core.Workload, error) {
	w := core.Workload{
		Name:   "CHACHA20",
		Source: chachaDriver(),
		Setup:  chachaSetup,
	}
	if _, err := asm.Assemble(w.Source); err != nil {
		return core.Workload{}, fmt.Errorf("CHACHA20: %w", err)
	}
	return w, nil
}
