package workloads

import (
	"fmt"
	"math/rand"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

const divIters = 32

// divLeakSource violates the third constant-time principle ("no secrets
// computed with variable-timing arithmetic"): the divisor of a divide
// is derived — branchlessly, with constant addresses — from the secret
// bit. On a fixed-latency divider the code is leak-free; on a divider
// with operand-dependent early termination (sim.Config.DataDepDivide)
// the quotient width, and therefore the divide latency, reveals the bit.
const divLeakSource = `
	.equ N, 32
	.text
_start:
	la   s2, bits
	call sweep            # warmup
	roi.begin
	call sweep
	roi.end
	la   t0, expected
	ld   t0, 0(t0)
	sub  a0, a0, t0
	snez a0, a0
	j    do_exit

sweep:                    # returns checksum in a0
	addi sp, sp, -16
	sd   ra, 8(sp)
	li   s5, 0
	li   s6, 0
	li   s7, 0x7FFFFFFFFFFFFFFF    # fixed dividend
	li   s8, 3                     # small divisor -> long divide
	li   s9, 0x10000000000         # large divisor -> short divide
sw_loop:
	add  t0, s2, s5
	lbu  s10, 0(t0)       # secret bit
	iter.begin s10
	neg  t1, s10          # mask
	xor  t2, s8, s9
	and  t2, t2, t1
	xor  t2, t2, s9       # divisor = bit ? small : large (branchless)
	divu t3, s7, t2       # variable-latency on an early-out divider
	iter.end
	slli t0, s6, 1
	srli t1, s6, 63
	or   s6, t0, t1
	xor  s6, s6, t3       # checksum
	addi s5, s5, 1
	li   t0, N
	bltu s5, t0, sw_loop
	mv   a0, s6
	ld   ra, 8(sp)
	addi sp, sp, 16
	ret
` + exitSequence + `
	.data
expected: .dword 0
bits:     .zero 32
`

// divLeakSetup writes a random-but-balanced bit sequence and the
// checksum reference.
func divLeakSetup(run int, m *sim.Machine, prog *asm.Program) error {
	rng := rand.New(rand.NewSource(0xD1_0000 + int64(run)))
	mem := m.Memory()
	const (
		dividend = uint64(0x7FFFFFFFFFFFFFFF)
		small    = uint64(3)
		large    = uint64(0x10000000000)
	)
	checksum := uint64(0)
	bitsAddr, ok := prog.Symbol("bits")
	if !ok {
		return fmt.Errorf("divleak: symbol bits missing")
	}
	for i := 0; i < divIters; i++ {
		bit := uint64(rng.Intn(2))
		mem.Write(bitsAddr+uint64(i), 1, bit)
		d := large
		if bit == 1 {
			d = small
		}
		checksum = checksum<<1 | checksum>>63
		checksum ^= dividend / d
	}
	mem.Write(prog.MustSymbol("expected"), 8, checksum)
	return nil
}

// DivLeak is the variable-timing-arithmetic case study: branchless code
// whose only secret dependence is the width of a divide.
func DivLeak() (core.Workload, error) {
	w := core.Workload{
		Name:   "CT-DIV",
		Source: divLeakSource,
		Setup:  divLeakSetup,
	}
	if _, err := asm.Assemble(w.Source); err != nil {
		return core.Workload{}, fmt.Errorf("CT-DIV: %w", err)
	}
	return w, nil
}
