package workloads

import (
	"fmt"
	"math/rand"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

// Number and size of input pairs for the CRYPTO_memcmp study (the paper
// generates 32 32-byte inputs with varying distributions of (in)equal
// bytes).
const (
	memcmpPairs   = 32
	memcmpBufLen  = 32
	memcmpPairGap = 128 // bytes between consecutive pair slots
)

// memcmpSource is the CT-MEM-CMP program: OpenSSL's constant-time
// CRYPTO_memcmp (Listing 7) driven by a caller whose control flow
// depends on the return value (Listing 8). Each iteration compares one
// input pair; the class label (equal=1/inequal=0) is precomputed by
// Setup. The iteration window closes immediately after the dependent
// branch, so the divergent call targets are in flight — visible in the
// reorder buffer — but architecturally past the sampled region, exactly
// the transient-execution signature of Section VII-C1.
func memcmpSource() string {
	return fmt.Sprintf(`
	.equ PAIRS,   %d
	.equ BUFLEN,  %d
	.equ PAIRGAP, %d
	.text
_start:
	la   s2, a_bufs
	la   s3, b_bufs
	la   s4, classes
	call sweep            # warmup pass outside the region of interest
	roi.begin
	call sweep
	roi.end
	mv   a0, zero
	j    do_exit

sweep:
	addi sp, sp, -16
	sd   ra, 8(sp)
	li   s5, 0            # pair index
sw_loop:
	add  t0, s4, s5
	lbu  s6, 0(t0)        # class: 1 if pair equal
	li   t0, PAIRGAP
	mul  t1, s5, t0
	add  s7, s2, t1       # pair's a storage
	add  s8, s3, t1       # pair's b storage
	# Stage the pair into the fixed comparison buffers (the victim's
	# working buffers); this happens outside the sampled window.
	la   s9, buf_a
	la   s10, buf_b
	li   t2, BUFLEN
cp_loop:
	lbu  t3, 0(s7)
	sb   t3, 0(s9)
	lbu  t3, 0(s8)
	sb   t3, 0(s10)
	addi s7, s7, 1
	addi s8, s8, 1
	addi s9, s9, 1
	addi s10, s10, 1
	addi t2, t2, -1
	bnez t2, cp_loop
	fence                 # quiesce stores before the measured window
	iter.begin s6
	la   a0, buf_a
	la   a1, buf_b
	li   a2, BUFLEN
	call crypto_memcmp
	bnez a0, sw_neq
	j    sw_eq            # both outcomes redirect once: path shapes match
sw_eq:
	iter.end              # equal path
	call equal
	j    sw_join
sw_neq:
	iter.end              # inequal path
	call inequal
	j    sw_join
sw_join:
	fence                 # wrong-path barrier: speculative dispatch of
	                      # the next pair's accesses stops here
	addi s5, s5, 1
	li   t0, PAIRS
	bltu s5, t0, sw_loop
	ld   ra, 8(sp)
	addi sp, sp, 16
	ret

# OpenSSL constant-time memory compare (Listing 7). The loop-closing
# branch at cm_loop's end is the one whose misprediction produces a
# premature speculative return.
crypto_memcmp:          # a0=a, a1=b, a2=len -> 0 iff equal
	li   t0, 0
	beqz a2, cm_done
cm_loop:
	lbu  t1, 0(a0)
	lbu  t2, 0(a1)
	addi a0, a0, 1
	addi a1, a1, 1
	addi a2, a2, -1
	xor  t1, t1, t2
	or   t0, t0, t1
	bgtz a2, cm_loop
cm_done:
	mv   a0, t0
	ret

	.align 6
equal:
	ret
	.align 6
inequal:
	ret
`+exitSequence+fmt.Sprintf(`
	.data
classes: .zero %d
	.align 6
buf_a:   .zero 64
	.align 6
buf_b:   .zero 64
	.align 6
a_bufs:  .zero %d
	.align 6
b_bufs:  .zero %d
`, memcmpPairs, memcmpPairs*memcmpPairGap, memcmpPairs*memcmpPairGap),
		memcmpPairs, memcmpBufLen, memcmpPairGap)
}

// memcmpClassPattern is the fixed sequence of equal(1)/inequal(0) pairs.
// Keeping the sequence fixed across runs means the branch-predictor
// trajectory — and therefore the transient behaviour — repeats per
// pair position, while the byte contents vary per run.
func memcmpClassPattern() []byte {
	pattern := make([]byte, memcmpPairs)
	for i := range pattern {
		// Long runs of equal and inequal pairs with a few transitions:
		// the transitions mistrain the caller's branch (exercising the
		// transient path) while the runs keep it predictable so that
		// driver-side misprediction timing stays rare.
		switch {
		case i < 12, i >= 22 && i < 26:
			pattern[i] = 1
		default:
			pattern[i] = 0
		}
	}
	return pattern
}

// memcmpSetup writes the input pairs: equal pairs are identical random
// buffers; inequal pairs differ first at a position that varies per pair
// (covering early and late divergence, per the paper's input design).
func memcmpSetup(run int, m *sim.Machine, prog *asm.Program) error {
	rng := rand.New(rand.NewSource(0xC0DE_0000 + int64(run)))
	mem := m.Memory()
	classes := memcmpClassPattern()
	aBase, ok := prog.Symbol("a_bufs")
	if !ok {
		return fmt.Errorf("memcmp: symbol a_bufs missing")
	}
	bBase := prog.MustSymbol("b_bufs")
	mem.WriteBytes(prog.MustSymbol("classes"), classes)

	for i := 0; i < memcmpPairs; i++ {
		a := make([]byte, memcmpBufLen)
		rng.Read(a)
		b := make([]byte, memcmpBufLen)
		copy(b, a)
		if classes[i] == 0 {
			// First difference at a pair-dependent position.
			pos := (i * 7) % memcmpBufLen
			b[pos] ^= byte(rng.Intn(255) + 1)
			for j := pos + 1; j < memcmpBufLen; j++ {
				if rng.Intn(2) == 0 {
					b[j] = byte(rng.Intn(256))
				}
			}
		}
		mem.WriteBytes(aBase+uint64(i*memcmpPairGap), a)
		mem.WriteBytes(bBase+uint64(i*memcmpPairGap), b)
	}
	return nil
}

// MemcmpCT is case study CT-MEM-CMP (Section VII-C1): the OpenSSL
// CRYPTO_memcmp primitive with a return-value-dependent branch.
func MemcmpCT() (core.Workload, error) {
	w := core.Workload{
		Name:   "CT-MEM-CMP",
		Source: memcmpSource(),
		Setup:  memcmpSetup,
	}
	if _, err := asm.Assemble(w.Source); err != nil {
		return core.Workload{}, fmt.Errorf("CT-MEM-CMP: %w", err)
	}
	return w, nil
}
