package workloads

import (
	"fmt"
	"math/rand"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

// modexpData is the shared data segment of the modular-exponentiation
// case studies. The three copy buffers sit on distinct pages (distinct
// TLB entries) and distinct cache lines; their +64 neighbour lines give
// the next-line prefetcher a class-distinguishing target.
const modexpData = `
	.data
a_val:     .dword 0
mod_val:   .dword 0
expected:  .dword 0
exp_bytes: .zero 4
	.align 12
r_buf:     .zero 128
	.align 12
dummy_buf: .zero 128
	.align 12
t_buf:     .zero 128
`

// modexpDriver builds the common square-and-multiply driver around a
// variant-specific per-iteration prologue (prep, e.g. attacker flushes)
// and conditional-copy call (ccopy). The driver runs one unmarked warmup
// pass and one marked pass inside the region of interest, then verifies
// the result against the reference value.
//
// Register allocation: s2=a, s3=mod, s4=&r_buf, s5=&dummy_buf,
// s6=&t_buf, s7=&exp_bytes, s8=i, s9=j, s10=exp[i], s1=current bit.
func modexpDriver(prep, ccopy, funcs string) string {
	return `
	.text
_start:
	la   s4, r_buf
	la   s5, dummy_buf
	la   s6, t_buf
	la   s7, exp_bytes
	la   t0, a_val
	ld   s2, 0(t0)
	la   t0, mod_val
	ld   s3, 0(t0)
	call modexp_run       # warmup pass: outside the region of interest
	roi.begin
	call modexp_run
	roi.end
	ld   t0, 0(s4)        # result r
	la   t1, expected
	ld   t1, 0(t1)
	sub  a0, t0, t1
	snez a0, a0           # exit 0 iff result matches reference
	j    do_exit

modexp_run:
	addi sp, sp, -16
	sd   ra, 8(sp)
	li   t0, 1
	sd   t0, 0(s4)        # r = 1
	li   s8, 3
mr_outer:
	add  t0, s7, s8
	lbu  s10, 0(t0)       # exp[i]
	li   s9, 7
mr_inner:
` + prep + `
	srl  t1, s10, s9
	andi t1, t1, 1        # current key bit
	# The final bit's iteration is left unmarked so that the function
	# epilogue never falls inside a sampled window (its loop-position
	# test uses only public loop counters).
	or   t6, s8, s9
	beqz t6, mr_skip_begin
	iter.begin t1
mr_skip_begin:
	mv   s1, t1
	ld   t2, 0(s4)        # r
	mul  t3, t2, t2
	remu t3, t3, s3       # r = r*r mod m
	sd   t3, 0(s4)
	mul  t4, s2, t3
	remu t4, t4, s3       # t = a*r mod m
	sd   t4, 0(s6)
` + ccopy + `
	or   t6, s8, s9
	beqz t6, mr_skip_end
	iter.end
mr_skip_end:
	addi s9, s9, -1
	bgez s9, mr_inner
	addi s8, s8, -1
	bgez s8, mr_outer
	ld   ra, 8(sp)
	addi sp, sp, 16
	ret
` + funcs + exitSequence + modexpData
}

// flushNeighbours evicts the lines adjacent to the copy destinations
// each iteration. The accesses themselves are secret-independent; they
// merely recreate the recurring-miss condition that the paper's
// 1024-bit working set produced naturally, so that prefetcher, MSHR and
// fill-buffer state stays live during the verified region.
const flushNeighbours = `
	addi t5, s4, 64
	cbo.flush (t5)
	addi t5, s5, 64
	cbo.flush (t5)
`

// flushDummy models capacity pressure on the write-only dummy region
// (paper Section VII-A2: dst stays warm because it is read every
// iteration, while dummy is evicted between its uses).
const flushDummy = `
	cbo.flush (s5)
`

// ccopyCVCall invokes the libgcrypt-style conditional copy of Listing 4.
const ccopyCVCall = `
	mv   a0, s1
	mv   a1, s4
	mv   a2, s5
	mv   a3, s6
	li   a4, 64
	call ccopy_cv
`

// ccopyCVAsm mirrors Listing 4: the compiler preloads dst as memmove's
// first argument before checking ctl; the ctl==0 path executes two extra
// instructions (a mv and a jump) to patch in the dummy destination.
const ccopyCVAsm = `
ccopy_cv:               # a0=ctl a1=dst a2=dummy a3=src a4=len
	mv   a6, a0
	mv   a5, a2
	mv   a0, a1         # preload dst
	mv   a1, a3
	mv   a2, a4
	beqz a6, cv_fix
cv_go:
	j    memmove        # tail call; returns to ccopy's caller
cv_fix:
	mv   a0, a5         # patch: dummy destination
	j    cv_go
`

// ccopyMVCall invokes the branchless pointer-select copy of Listing 5.
const ccopyMVCall = `
	mv   a0, s1
	mv   a1, s4
	mv   a2, s5
	mv   a3, s6
	li   a4, 64
	call ccopy_mv
`

// ccopyMVAsm is the branchless variant: the destination pointer is
// selected with mask arithmetic, so control flow and instruction timing
// are secret-independent — but the store addresses are not.
const ccopyMVAsm = `
ccopy_mv:               # a0=ctl a1=dst a2=dummy a3=src a4=len
	snez a0, a0
	neg  a0, a0         # mask = ctl ? -1 : 0
	xor  t0, a1, a2
	and  t0, t0, a0
	xor  t0, t0, a2     # ptr = ctl ? dst : dummy
	mv   a0, t0
	mv   a1, a3
	mv   a2, a4
	j    memmove
`

// ccopySafeCall invokes the BearSSL conditional copy of Listing 6.
const ccopySafeCall = `
	mv   a0, s1
	mv   a1, s4
	mv   a2, s6
	li   a3, 64
	call ccopy_safe
`

// ccopySafeAsm mirrors Listing 6 (BearSSL CCOPY): every byte of dst is
// rewritten with mask-selected content; addresses, control flow and
// instruction mix are all secret-independent.
const ccopySafeAsm = `
ccopy_safe:             # a0=ctl a1=dst a2=src a3=len
	snez a0, a0
	negw a0, a0         # mask
	add  a3, a3, a2     # src end
cs_loop:
	bne  a2, a3, cs_body
	ret
cs_body:
	lbu  a4, 0(a1)
	lbu  a5, 0(a2)
	addi a2, a2, 1
	addi a1, a1, 1
	xor  a5, a5, a4
	and  a5, a5, a0
	xor  a5, a5, a4
	sb   a5, -1(a1)
	j    cs_loop
`

// naiveBody is the classic square-and-multiply of Listing 1: the
// multiply and the result update only execute when the key bit is 1 —
// a textbook secret-dependent control flow.
const naiveBody = `
	beqz s1, nv_skip
	mul  t5, s2, t3       # recompute t = a*r only when the bit is set
	remu t5, t5, s3
	sd   t5, 0(s4)
nv_skip:
`

// modexpRef computes the reference result with the same scan order as
// the kernels (exp[3] first, MSB to LSB within each byte).
func modexpRef(a, mod uint64, exp [4]byte) uint64 {
	r := uint64(1)
	for i := 3; i >= 0; i-- {
		for j := 7; j >= 0; j-- {
			r = r * r % mod
			t := a * r % mod
			if exp[i]>>uint(j)&1 == 1 {
				r = t
			}
		}
	}
	return r
}

// modexpSetup writes per-run operands: a random odd 31-bit modulus, a
// random base below it, a random 32-bit exponent, and the reference
// result for the program's self-check.
func modexpSetup(run int, m *sim.Machine, prog *asm.Program) error {
	rng := rand.New(rand.NewSource(0x5EED_0000 + int64(run)))
	mod := uint64(rng.Int31())>>1 | 1<<29 | 1 // odd, comfortably 30-bit
	a := uint64(rng.Int63()) % (mod - 2)
	a += 2
	var exp [4]byte
	rng.Read(exp[:])

	mem := m.Memory()
	for _, sym := range []string{"a_val", "mod_val", "expected", "exp_bytes"} {
		if _, ok := prog.Symbol(sym); !ok {
			return fmt.Errorf("modexp: symbol %q missing", sym)
		}
	}
	mem.Write(prog.MustSymbol("a_val"), 8, a)
	mem.Write(prog.MustSymbol("mod_val"), 8, mod)
	mem.WriteBytes(prog.MustSymbol("exp_bytes"), exp[:])
	mem.Write(prog.MustSymbol("expected"), 8, modexpRef(a, mod, exp))
	return nil
}

func modexpWorkload(name, prep, ccopyCall, funcs string) (core.Workload, error) {
	w := core.Workload{
		Name:   name,
		Source: modexpDriver(prep, ccopyCall, funcs),
		Setup:  modexpSetup,
	}
	// Validate the assembly eagerly so constructors fail fast.
	if _, err := asm.Assemble(w.Source); err != nil {
		return core.Workload{}, fmt.Errorf("%s: %w", name, err)
	}
	return w, nil
}

// ModexpV1CV is case study ME-V1-CV: constant-time modular
// exponentiation whose conditional copy was compiled into the unbalanced
// branch sequence of Listing 4 (Section VII-A1).
func ModexpV1CV() (core.Workload, error) {
	return modexpWorkload("ME-V1-CV", flushNeighbours, ccopyCVCall,
		ccopyCVAsm+memmoveAsm)
}

// ModexpV1MV is case study ME-V1-MV: the branchless conditional copy of
// Listing 5, leaking only through secret-dependent store addresses
// (Section VII-A2).
func ModexpV1MV() (core.Workload, error) {
	return modexpWorkload("ME-V1-MV", flushNeighbours, ccopyMVCall,
		ccopyMVAsm+memmoveAsm)
}

// ModexpV1MVFig6A is the Fig. 6a timing experiment: ME-V1-MV with no
// cache pressure — both copy destinations stay resident, so iteration
// timing is indistinguishable across key-bit classes.
func ModexpV1MVFig6A() (core.Workload, error) {
	return modexpWorkload("ME-V1-MV-6A", "", ccopyMVCall,
		ccopyMVAsm+memmoveAsm)
}

// ModexpV1MVFig6B is the Fig. 6b timing experiment: the dst region is
// kept resident (it is read every iteration) while the dummy region is
// evicted between uses, so key-bit-0 iterations pay a store miss.
func ModexpV1MVFig6B() (core.Workload, error) {
	return modexpWorkload("ME-V1-MV-6B", flushDummy, ccopyMVCall,
		ccopyMVAsm+memmoveAsm)
}

// iterFence quiesces the pipeline between iterations so that each
// iteration's snapshot reflects only its own key bit (without it, the
// out-of-order front end runs far enough ahead that the next
// iteration's instructions execute inside the current window).
const iterFence = `
	fence
`

// ModexpV2Safe is case study ME-V2-Safe: the BearSSL branchless
// conditional copy (Section VII-A3). On the baseline core no unit shows
// a statistically significant correlation; on a core with FastBypass it
// becomes case study ME-V2-FB (Section VII-B2).
func ModexpV2Safe() (core.Workload, error) {
	return modexpWorkload("ME-V2-SAFE", iterFence, ccopySafeCall, ccopySafeAsm)
}

// ccopyGenericCall invokes a user-supplied conditional copy with the
// libgcrypt-style signature ccopy(ctl, dst, dummy, src, len).
const ccopyGenericCall = `
	mv   a0, s1
	mv   a1, s4
	mv   a2, s5
	mv   a3, s6
	li   a4, 64
	call ccopy
`

// ModexpWithConditionalCopy builds a modular-exponentiation workload
// around an externally supplied conditional-copy implementation: the
// funcs assembly must define a function `ccopy` with the signature
// ccopy(ctl, dst, dummy, src, len) plus anything it calls. It is the
// hook that lets the miniature constant-time compiler's output (or any
// hand-written variant) be verified inside the full case-study driver.
func ModexpWithConditionalCopy(name, funcs string) (core.Workload, error) {
	return modexpWorkload(name, flushNeighbours, ccopyGenericCall, funcs)
}

// ModexpNaive is the classic square-and-multiply of Listing 1, whose
// multiply is guarded by the key bit: a textbook timing leak used as the
// framework walkthrough (Fig. 1).
func ModexpNaive() (core.Workload, error) {
	return modexpWorkload("ME-NAIVE", "", naiveBody, "")
}
