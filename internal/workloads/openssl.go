package workloads

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

// opensslIters is the number of labeled iterations per run of a
// primitive sweep.
const opensslIters = 32

// lookupTable is the fixed 16-entry table of constant_time_lookup; the
// entries are arbitrary published constants so the Go reference and the
// program agree without a side channel for test data.
var lookupTable = func() [16]uint64 {
	var t [16]uint64
	for i := range t {
		t[i] = 0x9E3779B97F4A7C15 * uint64(i+1)
	}
	return t
}()

// primitive describes one OpenSSL constant_time_* kernel.
type primitive struct {
	name string
	// body is the assembly of `prim:` — a0=x, a1=y, result in a0. It
	// may use t-registers freely and p_-prefixed labels.
	body string
	// ref computes the expected result for the checksum self-check.
	ref func(x, y uint64) uint64
	// class computes the secret class bit for the iteration.
	class func(x, y uint64) uint64
	// inputs generates the operands for iteration i (class balance is
	// the generator's responsibility).
	inputs func(rng *rand.Rand) (x, y uint64)
	// data is extra data-section text (fixed buffers, tables).
	data string
}

func msbMask(v uint64) uint64 { return uint64(int64(v) >> 63) }

func isZeroMask(v uint64) uint64 { return msbMask(^v & (v - 1)) }

func ltMask(a, b uint64) uint64 {
	if a < b {
		return ^uint64(0)
	}
	return 0
}

func ltMaskS(a, b uint64) uint64 {
	if int64(a) < int64(b) {
		return ^uint64(0)
	}
	return 0
}

func b2m(b bool) uint64 {
	if b {
		return ^uint64(0)
	}
	return 0
}

func sext8(v uint64) uint64   { return uint64(int64(int8(v))) }
func sext32w(v uint64) uint64 { return uint64(int64(int32(v))) }

// eqOrRandom yields pairs that are equal about half the time.
func eqOrRandom(rng *rand.Rand) (uint64, uint64) {
	x := rng.Uint64()
	if rng.Intn(2) == 0 {
		return x, x
	}
	return x, rng.Uint64()
}

// zeroOrRandom yields x == 0 about half the time.
func zeroOrRandom(rng *rand.Rand) (uint64, uint64) {
	if rng.Intn(2) == 0 {
		return 0, rng.Uint64()
	}
	// Ensure nonzero in all widths so the class is unambiguous.
	return uint64(rng.Intn(200) + 1), rng.Uint64()
}

func randomPair(rng *rand.Rand) (uint64, uint64) {
	return rng.Uint64(), rng.Uint64()
}

// eqByteOrRandom yields byte-equal pairs about half the time (for the
// 8-bit equality variants, whole-word equality would be too rare).
func eqByteOrRandom(rng *rand.Rand) (uint64, uint64) {
	x, y := rng.Uint64(), rng.Uint64()
	if rng.Intn(2) == 0 {
		y = y&^uint64(0xFF) | x&0xFF
	}
	return x, y
}

// eq32OrRandom yields 32-bit-equal pairs about half the time.
func eq32OrRandom(rng *rand.Rand) (uint64, uint64) {
	x, y := rng.Uint64(), rng.Uint64()
	if rng.Intn(2) == 0 {
		y = y&^uint64(0xFFFFFFFF) | x&0xFFFFFFFF
	}
	return x, y
}

// The assembly bodies. All are branchless (except the fixed-trip-count
// limb loops of the _bn variants, whose control flow is length- but not
// data-dependent).
const (
	asmIsZero = `
prim:                   # is_zero(x): all-ones iff x == 0
	not  t0, a0
	addi t1, a0, -1
	and  t0, t0, t1
	srai a0, t0, 63
	ret
`
	asmIsZero8 = `
prim:                   # is_zero_8
	andi a0, a0, 0xFF
	not  t0, a0
	addi t1, a0, -1
	and  t0, t0, t1
	srai a0, t0, 63
	andi a0, a0, 0xFF
	ret
`
	asmIsZero32 = `
prim:                   # is_zero_32
	slli a0, a0, 32
	srli a0, a0, 32
	not  t0, a0
	addi t1, a0, -1
	and  t0, t0, t1
	srai a0, t0, 63
	sext.w a0, a0
	ret
`
	asmEq = `
prim:                   # eq(x, y)
	xor  a0, a0, a1
	not  t0, a0
	addi t1, a0, -1
	and  t0, t0, t1
	srai a0, t0, 63
	ret
`
	asmEq8 = `
prim:                   # eq_8
	xor  a0, a0, a1
	andi a0, a0, 0xFF
	not  t0, a0
	addi t1, a0, -1
	and  t0, t0, t1
	srai a0, t0, 63
	andi a0, a0, 0xFF
	ret
`
	asmEqInt = `
prim:                   # eq_int (32-bit signed operands)
	sext.w a0, a0
	sext.w a1, a1
	xor  a0, a0, a1
	not  t0, a0
	addi t1, a0, -1
	and  t0, t0, t1
	srai a0, t0, 63
	ret
`
	asmEqInt8 = `
prim:                   # eq_int_8
	sext.w a0, a0
	sext.w a1, a1
	xor  a0, a0, a1
	not  t0, a0
	addi t1, a0, -1
	and  t0, t0, t1
	srai a0, t0, 63
	andi a0, a0, 0xFF
	ret
`
	asmLt = `
prim:                   # lt(x, y) unsigned
	sltu t0, a0, a1
	neg  a0, t0
	ret
`
	asmLtS = `
prim:                   # lt_s(x, y) signed
	slt  t0, a0, a1
	neg  a0, t0
	ret
`
	asmLt32 = `
prim:                   # lt_32: on 32-bit truncations
	slli a0, a0, 32
	srli a0, a0, 32
	slli a1, a1, 32
	srli a1, a1, 32
	sltu t0, a0, a1
	neg  a0, t0
	ret
`
	asmGe = `
prim:                   # ge(x, y) unsigned
	sltu t0, a0, a1
	addi a0, t0, -1     # 0 -> all ones, 1 -> 0
	ret
`
	asmGeS = `
prim:                   # ge_s(x, y) signed
	slt  t0, a0, a1
	addi a0, t0, -1
	ret
`
	asmGe8S = `
prim:                   # ge_8_s: on sign-extended bytes
	slli a0, a0, 56
	srai a0, a0, 56
	slli a1, a1, 56
	srai a1, a1, 56
	slt  t0, a0, a1
	addi a0, t0, -1
	ret
`
	asmSelect = `
prim:                   # select(bit(x), y, x>>1)
	andi t0, a0, 1
	neg  t0, t0         # mask
	srli a0, a0, 1
	and  t1, a1, t0
	not  t2, t0
	and  a0, a0, t2
	or   a0, a0, t1
	ret
`
	asmSelect8 = `
prim:                   # select_8
	andi t0, a0, 1
	neg  t0, t0
	srli a0, a0, 1
	and  t1, a1, t0
	not  t2, t0
	and  a0, a0, t2
	or   a0, a0, t1
	andi a0, a0, 0xFF
	ret
`
	asmSelect32 = `
prim:                   # select_32
	andi t0, a0, 1
	neg  t0, t0
	srli a0, a0, 1
	and  t1, a1, t0
	not  t2, t0
	and  a0, a0, t2
	or   a0, a0, t1
	sext.w a0, a0
	ret
`
	asmCondSwap = `
prim:                   # cond_swap(bit(x), x>>1, y)
	andi t0, a0, 1
	neg  t0, t0         # mask
	srli a0, a0, 1      # a
	xor  t1, a0, a1     # a ^ b
	and  t1, t1, t0
	xor  a0, a0, t1     # a'
	xor  a1, a1, t1     # b'
	slli t2, a1, 1
	srli t3, a1, 63
	or   t2, t2, t3     # rotl(b', 1)
	xor  a0, a0, t2
	ret
`
	asmCondSwap32 = `
prim:                   # cond_swap_32
	andi t0, a0, 1
	negw t0, t0         # 32-bit mask, sign-extended
	srliw t4, a0, 1     # a = uint32(x) >> 1
	sext.w a1, a1       # b = sext32(y)
	xor  t1, t4, a1
	and  t1, t1, t0
	xor  t4, t4, t1     # a'
	xor  a1, a1, t1     # b'
	slliw t2, a1, 1
	srliw t3, a1, 31
	or   t2, t2, t3     # rotl32(b')
	xor  a0, t4, t2
	sext.w a0, a0
	ret
`
)

// asmEqBn compares two 4-limb big numbers derived from x and y; the
// limbs live in fixed buffers so the store/load addresses are
// secret-independent.
const asmEqBn = `
prim:                   # eq_bn: 4-limb equality
	la   t0, bn_a
	la   t1, bn_b
	sd   a0, 0(t0)      # limbs a = {x, x+1, x*2, x^7}
	addi t2, a0, 1
	sd   t2, 8(t0)
	slli t2, a0, 1
	sd   t2, 16(t0)
	xori t2, a0, 7
	sd   t2, 24(t0)
	sd   a1, 0(t1)      # limbs b likewise from y
	addi t2, a1, 1
	sd   t2, 8(t1)
	slli t2, a1, 1
	sd   t2, 16(t1)
	xori t2, a1, 7
	sd   t2, 24(t1)
	li   t3, 0          # xor accumulator
	li   t4, 4
p_loop:
	ld   t5, 0(t0)
	ld   t6, 0(t1)
	xor  t5, t5, t6
	or   t3, t3, t5
	addi t0, t0, 8
	addi t1, t1, 8
	addi t4, t4, -1
	bnez t4, p_loop
	not  t0, t3
	addi t1, t3, -1
	and  t0, t0, t1
	srai a0, t0, 63
	ret
`

const bnData = `
	.align 6
bn_a: .zero 32
	.align 6
bn_b: .zero 32
`

// asmLtBn compares two 4-limb big numbers (most significant limb first)
// with a branchless borrow chain.
const asmLtBn = `
prim:                   # lt_bn: 4-limb unsigned less-than
	la   t0, bn_a
	la   t1, bn_b
	sd   a0, 0(t0)
	srli t2, a0, 7
	sd   t2, 8(t0)
	slli t2, a0, 3
	sd   t2, 16(t0)
	xori t2, a0, 29
	sd   t2, 24(t0)
	sd   a1, 0(t1)
	srli t2, a1, 7
	sd   t2, 8(t1)
	slli t2, a1, 3
	sd   t2, 16(t1)
	xori t2, a1, 29
	sd   t2, 24(t1)
	li   t3, 0          # result mask
	li   t4, 0          # decided mask
	li   t5, 4
p_loop:
	ld   t6, 0(t0)
	ld   a2, 0(t1)
	sltu a3, t6, a2     # this limb less?
	neg  a3, a3
	xor  a4, t6, a2     # limbs differ?
	snez a4, a4
	neg  a4, a4
	not  a5, t4
	and  a6, a3, a5
	or   t3, t3, a6     # adopt verdict if undecided
	and  a6, a4, a5
	or   t4, t4, a6     # decided once limbs differ
	addi t0, t0, 8
	addi t1, t1, 8
	addi t5, t5, -1
	bnez t5, p_loop
	mv   a0, t3
	ret
`

// asmCondSwapBuff swaps two 32-byte buffers under a mask, byte by byte.
const asmCondSwapBuff = `
prim:                   # cond_swap_buff(bit(x), bufs from x and y)
	la   t0, bn_a
	la   t1, bn_b
	sd   a0, 0(t0)      # fill buffers from the operands
	sd   a1, 8(t0)
	xor  t2, a0, a1
	sd   t2, 16(t0)
	add  t2, a0, a1
	sd   t2, 24(t0)
	sd   a1, 0(t1)
	sd   a0, 8(t1)
	not  t2, a0
	sd   t2, 16(t1)
	sub  t2, a1, a0
	sd   t2, 24(t1)
	andi t2, a0, 1
	neg  t2, t2         # mask
	li   t3, 32
p_loop:
	lbu  t4, 0(t0)
	lbu  t5, 0(t1)
	xor  t6, t4, t5
	and  t6, t6, t2
	xor  t4, t4, t6
	xor  t5, t5, t6
	sb   t4, 0(t0)
	sb   t5, 0(t1)
	addi t0, t0, 1
	addi t1, t1, 1
	addi t3, t3, -1
	bnez t3, p_loop
	la   t0, bn_a
	la   t1, bn_b
	ld   t2, 0(t0)
	ld   t3, 24(t1)
	xor  a0, t2, t3
	ret
`

// asmLookup scans the whole fixed table and mask-selects entry x&15.
const asmLookup = `
prim:                   # lookup(idx = x & 15)
	andi a0, a0, 15
	la   t0, lut
	li   t1, 0          # i
	li   t2, 0          # acc
	li   t3, 16
p_loop:
	xor  t4, t1, a0     # eq(i, idx) mask
	not  t5, t4
	addi t6, t4, -1
	and  t5, t5, t6
	srai t5, t5, 63
	ld   t6, 0(t0)
	and  t6, t6, t5
	or   t2, t2, t6
	addi t0, t0, 8
	addi t1, t1, 1
	bne  t1, t3, p_loop
	mv   a0, t2
	ret
`

func lutData() string {
	s := "\tlut:\n"
	for _, v := range lookupTable {
		s += fmt.Sprintf("\t.dword %d\n", int64(v))
	}
	return "\t.align 6\n" + s
}

// primitives returns the full Table V catalogue (27 branchless kernels;
// CRYPTO_memcmp is the 28th, implemented in memcmp.go).
func primitives() []primitive {
	refEqBn := func(x, y uint64) uint64 {
		la := [4]uint64{x, x + 1, x << 1, x ^ 7}
		lb := [4]uint64{y, y + 1, y << 1, y ^ 7}
		acc := uint64(0)
		for i := range la {
			acc |= la[i] ^ lb[i]
		}
		return isZeroMask(acc)
	}
	refLtBn := func(x, y uint64) uint64 {
		la := [4]uint64{x, x >> 7, x << 3, x ^ 29}
		lb := [4]uint64{y, y >> 7, y << 3, y ^ 29}
		for i := range la {
			if la[i] != lb[i] {
				return b2m(la[i] < lb[i])
			}
		}
		return 0
	}
	refSwapBuff := func(x, y uint64) uint64 {
		a := [4]uint64{x, y, x ^ y, x + y}
		b := [4]uint64{y, x, ^x, y - x}
		if x&1 == 1 {
			a, b = b, a
		}
		return a[0] ^ b[3]
	}
	refLookup := func(x, _ uint64) uint64 { return lookupTable[x&15] }
	refSelect := func(x, y uint64) uint64 {
		m := uint64(0)
		if x&1 == 1 {
			m = ^uint64(0)
		}
		return y&m | (x>>1)&^m
	}
	refCondSwap := func(x, y uint64) uint64 {
		a, b := x>>1, y
		if x&1 == 1 {
			a, b = b, a
		}
		return a ^ bits.RotateLeft64(b, 1)
	}
	classBit := func(x, _ uint64) uint64 { return x & 1 }

	return []primitive{
		{
			name: "constant_time_eq", body: asmEq,
			ref:    func(x, y uint64) uint64 { return isZeroMask(x ^ y) },
			class:  func(x, y uint64) uint64 { return boolBit(x == y) },
			inputs: eqOrRandom,
		},
		{
			name: "constant_time_eq_8", body: asmEq8,
			ref:    func(x, y uint64) uint64 { return isZeroMask((x^y)&0xFF) & 0xFF },
			class:  func(x, y uint64) uint64 { return boolBit(x&0xFF == y&0xFF) },
			inputs: eqByteOrRandom,
		},
		{
			name: "constant_time_eq_int", body: asmEqInt,
			ref:    func(x, y uint64) uint64 { return isZeroMask(sext32w(x) ^ sext32w(y)) },
			class:  func(x, y uint64) uint64 { return boolBit(uint32(x) == uint32(y)) },
			inputs: eq32OrRandom,
		},
		{
			name: "constant_time_eq_int_8", body: asmEqInt8,
			ref:    func(x, y uint64) uint64 { return isZeroMask(sext32w(x)^sext32w(y)) & 0xFF },
			class:  func(x, y uint64) uint64 { return boolBit(uint32(x) == uint32(y)) },
			inputs: eq32OrRandom,
		},
		{
			name: "constant_time_eq_bn", body: asmEqBn, data: bnData,
			ref:    refEqBn,
			class:  func(x, y uint64) uint64 { return boolBit(x == y) },
			inputs: eqOrRandom,
		},
		{
			name: "constant_time_select", body: asmSelect,
			ref:    refSelect,
			class:  classBit,
			inputs: randomPair,
		},
		{
			name: "constant_time_select_8", body: asmSelect8,
			ref:    func(x, y uint64) uint64 { return refSelect(x, y) & 0xFF },
			class:  classBit,
			inputs: randomPair,
		},
		{
			name: "constant_time_select_32", body: asmSelect32,
			ref:    func(x, y uint64) uint64 { return sext32w(refSelect(x, y)) },
			class:  classBit,
			inputs: randomPair,
		},
		{
			name: "constant_time_select_64", body: asmSelect,
			ref:    refSelect,
			class:  classBit,
			inputs: randomPair,
		},
		{
			name: "constant_time_ge", body: asmGe,
			ref:    func(x, y uint64) uint64 { return ^ltMask(x, y) },
			class:  func(x, y uint64) uint64 { return boolBit(x >= y) },
			inputs: randomPair,
		},
		{
			name: "constant_time_ge_s", body: asmGeS,
			ref:    func(x, y uint64) uint64 { return ^ltMaskS(x, y) },
			class:  func(x, y uint64) uint64 { return boolBit(int64(x) >= int64(y)) },
			inputs: randomPair,
		},
		{
			name: "constant_time_ge_8_s", body: asmGe8S,
			ref:    func(x, y uint64) uint64 { return ^ltMaskS(sext8(x), sext8(y)) },
			class:  func(x, y uint64) uint64 { return boolBit(int8(x) >= int8(y)) },
			inputs: randomPair,
		},
		{
			name: "constant_time_lt", body: asmLt,
			ref:    ltMask,
			class:  func(x, y uint64) uint64 { return boolBit(x < y) },
			inputs: randomPair,
		},
		{
			name: "constant_time_lt_s", body: asmLtS,
			ref:    ltMaskS,
			class:  func(x, y uint64) uint64 { return boolBit(int64(x) < int64(y)) },
			inputs: randomPair,
		},
		{
			name: "constant_time_lt_32", body: asmLt32,
			ref:    func(x, y uint64) uint64 { return ltMask(x&0xFFFFFFFF, y&0xFFFFFFFF) },
			class:  func(x, y uint64) uint64 { return boolBit(uint32(x) < uint32(y)) },
			inputs: randomPair,
		},
		{
			name: "constant_time_lt_64", body: asmLt,
			ref:    ltMask,
			class:  func(x, y uint64) uint64 { return boolBit(x < y) },
			inputs: randomPair,
		},
		{
			name: "constant_time_lt_bn", body: asmLtBn, data: bnData,
			ref:    refLtBn,
			class:  func(x, y uint64) uint64 { return refLtBn(x, y) & 1 },
			inputs: randomPair,
		},
		{
			name: "constant_time_cond_swap", body: asmCondSwap,
			ref:    refCondSwap,
			class:  classBit,
			inputs: randomPair,
		},
		{
			name: "constant_time_cond_swap_32", body: asmCondSwap32,
			ref:    refCondSwap32Fixed,
			class:  classBit,
			inputs: randomPair,
		},
		{
			name: "constant_time_cond_swap_64", body: asmCondSwap,
			ref:    refCondSwap,
			class:  classBit,
			inputs: randomPair,
		},
		{
			name: "constant_time_cond_swap_buff", body: asmCondSwapBuff, data: bnData,
			ref:    refSwapBuff,
			class:  classBit,
			inputs: randomPair,
		},
		{
			name: "constant_time_lookup", body: asmLookup, data: lutData(),
			ref:    refLookup,
			class:  func(x, _ uint64) uint64 { return x & 15 & 1 },
			inputs: randomPair,
		},
		{
			name: "constant_time_is_zero", body: asmIsZero,
			ref:    func(x, _ uint64) uint64 { return isZeroMask(x) },
			class:  func(x, _ uint64) uint64 { return boolBit(x == 0) },
			inputs: zeroOrRandom,
		},
		{
			name: "constant_time_is_zero_s", body: asmIsZero,
			ref:    func(x, _ uint64) uint64 { return isZeroMask(x) },
			class:  func(x, _ uint64) uint64 { return boolBit(x == 0) },
			inputs: zeroOrRandom,
		},
		{
			name: "constant_time_is_zero_8", body: asmIsZero8,
			ref:    func(x, _ uint64) uint64 { return isZeroMask(x&0xFF) & 0xFF },
			class:  func(x, _ uint64) uint64 { return boolBit(x&0xFF == 0) },
			inputs: zeroOrRandom,
		},
		{
			name: "constant_time_is_zero_32", body: asmIsZero32,
			ref:    func(x, _ uint64) uint64 { return sext32w(isZeroMask(x & 0xFFFFFFFF)) },
			class:  func(x, _ uint64) uint64 { return boolBit(uint32(x) == 0) },
			inputs: zeroOrRandom,
		},
		{
			name: "constant_time_is_zero_64", body: asmIsZero,
			ref:    func(x, _ uint64) uint64 { return isZeroMask(x) },
			class:  func(x, _ uint64) uint64 { return boolBit(x == 0) },
			inputs: zeroOrRandom,
		},
	}
}

// refCondSwap32Fixed is the reference for the 32-bit conditional swap:
// a = uint32(x)>>1 and b = uint32(y) swapped under bit(x); the result is
// sext32(a' ^ rotl32(b', 1)), matching the kernel's fold.
func refCondSwap32Fixed(x, y uint64) uint64 {
	a := uint32(x) >> 1
	b := uint32(y)
	if x&1 == 1 {
		a, b = b, a
	}
	return sext32w(uint64(a ^ bits.RotateLeft32(b, 1)))
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// OpenSSLPrimitiveNames lists the Table V primitive sweep names, sorted.
func OpenSSLPrimitiveNames() []string {
	ps := primitives()
	out := make([]string, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.name)
	}
	sort.Strings(out)
	return out
}

// primitiveDriver is the shared sweep harness around one primitive.
func primitiveDriver(p primitive) string {
	return fmt.Sprintf(`
	.equ N, %d
	.text
_start:
	la   s2, xs
	la   s3, ys
	la   s4, classes
	call sweep            # warmup pass
	roi.begin
	call sweep
	roi.end
	la   t0, expected
	ld   t0, 0(t0)
	sub  a0, a0, t0
	snez a0, a0
	j    do_exit

sweep:                    # returns checksum in a0
	addi sp, sp, -16
	sd   ra, 8(sp)
	li   s5, 0
	li   s6, 0
sw_loop:
	slli t0, s5, 3
	add  t1, s2, t0
	ld   a0, 0(t1)        # x
	add  t1, s3, t0
	ld   a1, 0(t1)        # y
	add  t1, s4, s5
	lbu  s7, 0(t1)        # class
	iter.begin s7
	call prim
	iter.end
	slli t0, s6, 1
	srli t1, s6, 63
	or   s6, t0, t1       # checksum = rotl(checksum, 1) ^ result
	xor  s6, s6, a0
	addi s5, s5, 1
	li   t0, N
	bltu s5, t0, sw_loop
	mv   a0, s6
	ld   ra, 8(sp)
	addi sp, sp, 16
	ret
%s%s
	.data
expected: .dword 0
xs:       .zero %d
ys:       .zero %d
classes:  .zero %d
%s`, opensslIters, p.body, exitSequence,
		8*opensslIters, 8*opensslIters, opensslIters, p.data)
}

// primitiveSetup writes per-run operands, classes and the reference
// checksum.
func primitiveSetup(p primitive) func(int, *sim.Machine, *asm.Program) error {
	return func(run int, m *sim.Machine, prog *asm.Program) error {
		rng := rand.New(rand.NewSource(0x0551_0000 + int64(run)))
		mem := m.Memory()
		xs := prog.MustSymbol("xs")
		ys := prog.MustSymbol("ys")
		classes := prog.MustSymbol("classes")
		checksum := uint64(0)
		for i := 0; i < opensslIters; i++ {
			x, y := p.inputs(rng)
			mem.Write(xs+uint64(8*i), 8, x)
			mem.Write(ys+uint64(8*i), 8, y)
			mem.Write(classes+uint64(i), 1, p.class(x, y))
			checksum = bits.RotateLeft64(checksum, 1) ^ p.ref(x, y)
		}
		mem.Write(prog.MustSymbol("expected"), 8, checksum)
		return nil
	}
}

// OpenSSLPrimitive builds the verification workload for one Table V
// primitive by name.
func OpenSSLPrimitive(name string) (core.Workload, error) {
	for _, p := range primitives() {
		if p.name != name {
			continue
		}
		w := core.Workload{
			Name:   p.name,
			Source: primitiveDriver(p),
			Setup:  primitiveSetup(p),
		}
		if _, err := asm.Assemble(w.Source); err != nil {
			return core.Workload{}, fmt.Errorf("%s: %w", p.name, err)
		}
		return w, nil
	}
	return core.Workload{}, fmt.Errorf("workloads: unknown primitive %q", name)
}
