package workloads

import (
	"fmt"
	"math/rand"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

// SPECTRE-PHT is the strongest demonstration of the paper's thesis that
// microarchitectural visibility catches leakage that never manifests
// architecturally: a classic bounds-check-bypass victim.
//
//	uint64 victim(uint64 idx) {
//	    if (idx < len) return table2[(table1[idx] & 1) * 64];
//	    return 0;
//	}
//
// Each iteration trains the bounds check in-bounds, evicts the length
// and the probe array, then calls the victim with an out-of-bounds
// index aiming at a secret byte. The architectural result of the probe
// is always 0 — the bounds check holds — but the mispredicted window
// transiently loads table2 at a secret-dependent line, which shows up
// in the load queue, cache requests and miss-handling state. The class
// label is the secret bit (known to the verifier, as in all MicroSampler
// experiments).
const spectreIters = 12

const spectreSource = `
	.equ ITERS, 12
	.text
_start:
	call sweep            # warmup pass
	roi.begin
	call sweep
	roi.end
	la   t0, expected
	ld   t0, 0(t0)
	sub  a0, a0, t0
	snez a0, a0
	j    do_exit

sweep:                    # returns the in-bounds checksum in a0
	addi sp, sp, -32
	sd   ra, 24(sp)
	sd   s0, 16(sp)
	li   s2, ITERS
	li   s6, 0            # checksum of architectural results
sw_loop:
	# Train the bounds check with in-bounds calls.
	li   s4, 4
sw_train:
	andi a0, s4, 3
	call victim
	add  s6, s6, a0
	addi s4, s4, -1
	bnez s4, sw_train
	# Vary the global branch history so that every probe's bounds check
	# maps to a fresh (untrained, weakly not-taken) predictor entry —
	# the mistraining step of a Spectre attack, expressed through
	# history divergence. A persistent counter makes the (k1, k2) spin
	# pattern unique across all iterations of both passes.
	la   t0, gctr
	ld   t1, 0(t0)
	addi t2, t1, 1
	sd   t2, 0(t0)
	li   t2, 5
	remu t3, t1, t2       # k1 = g % 5
	divu t4, t1, t2
	remu t4, t4, t2       # k2 = (g / 5) % 5
sw_spin1:
	beqz t3, sw_spin1_done
	addi t3, t3, -1
	j    sw_spin1
sw_spin1_done:
sw_spin2:
	beqz t4, sw_spin2_done
	addi t4, t4, -1
	j    sw_spin2
sw_spin2_done:
	# Attacker phase: evict the bound (so the check resolves late and
	# the transient window is wide) and the probe array (so the
	# transient access is observable as a miss); keep the secret's
	# line warm (it shares a line with unrelated hot data). The
	# serializing flushes double as a speculation barrier: no younger
	# load can issue — and re-fill the evicted lines — before they
	# complete.
	la   t0, len_slot
	cbo.flush (t0)
	la   t0, table2
	cbo.flush (t0)
	addi t0, t0, 64
	cbo.flush (t0)
	la   t0, warm
	ld   t1, 0(t0)
	# Probe: out-of-bounds index aimed at the secret byte.
	la   t0, classbit
	lbu  s5, 0(t0)        # class label = the secret bit under test
	la   t0, secret
	la   t1, table1
	sub  s0, t0, t1       # OOB index
	iter.begin s5
	mv   a0, s0
	call victim
	add  s6, s6, a0       # architecturally always 0
	iter.end
	fence
	addi s2, s2, -1
	bnez s2, sw_loop
	mv   a0, s6
	ld   s0, 16(sp)
	ld   ra, 24(sp)
	addi sp, sp, 32
	ret

victim:                   # a0 = idx; returns table2 word or 0
	la   t0, len_slot
	ld   t1, 0(t0)        # evicted bound: the check resolves late
	bgeu a0, t1, v_skip
	la   t2, table1
	add  t2, t2, a0
	lbu  t3, 0(t2)
	andi t3, t3, 1
	slli t3, t3, 6
	la   t4, table2
	add  t4, t4, t3
	lwu  a0, 0(t4)        # secret-dependent line — transient on probes
	ret
v_skip:
	li   a0, 0
	ret
` + exitSequence + `
	.data
expected: .dword 0
gctr:     .dword 0
classbit: .byte 0
	.align 6
	.zero 64              # guard line: keeps the next-line prefetcher
	                      # triggered by the line above from re-fetching
	                      # the evicted bound below
len_slot: .dword 4
table1:   .byte 0, 1, 0, 1
	.align 6
	.zero 64              # guard line before the probe array
table2:   .zero 128
	.align 6
	.zero 64              # guard line before the secret's line
warm:     .dword 0
secret:   .byte 0
`

func spectreSetup(run int, m *sim.Machine, prog *asm.Program) error {
	rng := rand.New(rand.NewSource(0x59EC_0000 + int64(run)))
	mem := m.Memory()

	// Per-run random secret with a deterministically balanced low bit.
	secret := byte(rng.Intn(256))
	secret = secret&^1 | byte(run&1)
	sym, ok := prog.Symbol("secret")
	if !ok {
		return fmt.Errorf("spectre: symbol secret missing")
	}
	mem.Write(sym, 1, uint64(secret))
	mem.Write(prog.MustSymbol("classbit"), 1, uint64(secret&1))

	// table2 contents (loaded by the in-bounds calls and transiently by
	// the probe).
	t2 := prog.MustSymbol("table2")
	for i := 0; i < 2; i++ {
		mem.Write(t2+uint64(64*i), 4, uint64(0x1000+i))
	}

	// The architectural checksum: both passes run ITERS iterations of 4
	// in-bounds calls each; the probe call always contributes 0.
	inBounds := func(idx uint64) uint64 {
		t1 := []uint64{0, 1, 0, 1}
		return 0x1000 + t1[idx]&1
	}
	perIter := inBounds(0) + inBounds(1) + inBounds(2) + inBounds(3)
	mem.Write(prog.MustSymbol("expected"), 8, uint64(spectreIters)*perIter)
	return nil
}

// SpectrePHT is the bounds-check-bypass case study: the leak exists
// only in transient execution.
func SpectrePHT() (core.Workload, error) {
	w := core.Workload{
		Name:   "SPECTRE-PHT",
		Source: spectreSource,
		Setup:  spectreSetup,
	}
	if _, err := asm.Assemble(w.Source); err != nil {
		return core.Workload{}, fmt.Errorf("SPECTRE-PHT: %w", err)
	}
	return w, nil
}
