package workloads

import (
	"fmt"
	"math/rand"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

const (
	strideIters = 32
	strideLines = 8 // cache lines per walk
)

// strideLeakSource is the stride-prefetcher case study. Each iteration
// walks the same eight cache lines with a single load instruction, but
// the secret bit chooses the direction: forward from R with stride +64,
// or backward from R+448 with stride -64. The set of lines touched, the
// bytes summed, the page, and the timing are identical either way — the
// checksum is a commutative sum, and a branchless select computes the
// start pointer and stride, so no instruction stream depends on the
// secret.
//
// A stride prefetcher, however, runs one stride *ahead* of the walk: a
// forward pass trains it onto R+512 (the high guard line) and a
// backward pass onto R-64 (the low guard line). Both guard lines are
// flushed every gap, so exactly one prefetch is in flight when the
// sampled window opens — and its address is the secret. The leak lives
// only in the SPF/LFB/MSHR trackers of the stride cell; with the
// prefetcher off the same code is completely clean.
//
// The two cbo.flush ops double as the gap rendezvous: they serialize
// dispatch, so no next-iteration load enters the machine while a window
// is still open, keeping the LQ and ROB class-independent. The walk
// region is aligned to 1024 bytes at runtime so lines R-64..R+512 never
// straddle a page and the TLB footprint is one entry in both classes.
const strideLeakSource = `
	.equ N, 32
	.text
_start:
	la   s2, bits
	la   s3, buf          # align the walk region: R0 = roundup(buf, 1024)
	addi s3, s3, 1023
	srli s3, s3, 10
	slli s3, s3, 10
	addi s3, s3, 64       # R: walk lines R..R+448, guards at R-64, R+512
	call sweep            # warmup
	roi.begin
	call sweep
	roi.end
	la   t0, expected
	ld   t0, 0(t0)
	sub  a0, a0, t0
	snez a0, a0
	j    do_exit

sweep:                    # returns checksum in a0
	addi sp, sp, -16
	sd   ra, 8(sp)
	li   s5, 0            # iteration index
	li   s6, 0            # checksum
sw_loop:
	addi t0, s3, -64      # flush both guard lines every gap: serializing
	cbo.flush (t0)        # rendezvous, and keeps the guards prefetchable
	addi t0, s3, 512
	cbo.flush (t0)
	add  t0, s2, s5
	lbu  s10, 0(t0)       # secret bit: walk direction
	neg  t1, s10          # branchless select — no secret branches
	li   t2, 448
	and  t2, t2, t1
	add  t3, s3, t2       # start = R (fwd) or R+448 (back)
	li   t4, 128
	and  t4, t4, t1
	li   t5, 64
	sub  t5, t5, t4       # stride = +64 (fwd) or -64 (back)
	li   t6, 8
wk_loop:
	ld   t0, 0(t3)        # single load PC: one stream in the stride table
	add  s6, s6, t0       # commutative sum: class-independent checksum
	add  t3, t3, t5
	addi t6, t6, -1
	bnez t6, wk_loop
	iter.begin s10
	slli t0, s6, 1        # constant-time window body
	srli t1, s6, 63
	or   t2, t0, t1
	xor  t2, t2, s5
	add  t4, t2, t0
	xor  t4, t4, t1
	iter.end
	addi s5, s5, 1
	li   t0, N
	bltu s5, t0, sw_loop
	mv   a0, s6
	ld   ra, 8(sp)
	addi sp, sp, 16
	ret
` + exitSequence + `
	.data
expected: .dword 0
bits:     .zero 32
buf:      .zero 2048
`

// strideLeakSetup seeds the walk lines with random dwords, writes the
// balanced secret direction bits, and precomputes the checksum using the
// same runtime alignment the assembly performs.
func strideLeakSetup(run int, m *sim.Machine, prog *asm.Program) error {
	rng := rand.New(rand.NewSource(0x5F_0000 + int64(run)))
	mem := m.Memory()
	bufAddr, ok := prog.Symbol("buf")
	if !ok {
		return fmt.Errorf("strideleak: symbol buf missing")
	}
	r := (bufAddr+1023)&^uint64(1023) + 64
	linesum := uint64(0)
	for k := 0; k < strideLines; k++ {
		v := rng.Uint64()
		mem.Write(r+uint64(k)*64, 8, v)
		linesum += v
	}
	bitsAddr := prog.MustSymbol("bits")
	for i := 0; i < strideIters; i++ {
		mem.Write(bitsAddr+uint64(i), 1, uint64(rng.Intn(2)))
	}
	mem.Write(prog.MustSymbol("expected"), 8, linesum*strideIters)
	return nil
}

// StrideLeak is the stride-prefetcher case study: a direction-dependent
// but otherwise perfectly balanced walk whose only observable secret
// dependence is which guard line the prefetcher chases.
func StrideLeak() (core.Workload, error) {
	w := core.Workload{
		Name:   "SPF-STREAM",
		Source: strideLeakSource,
		Setup:  strideLeakSetup,
	}
	if _, err := asm.Assemble(w.Source); err != nil {
		return core.Workload{}, fmt.Errorf("SPF-STREAM: %w", err)
	}
	return w, nil
}
