package workloads

import (
	"fmt"
	"math/rand"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

const tageIters = 32

// tageLeakSource is the deep-history branch-predictor case study. Each
// iteration resolves one secret-direction branch *before* the sampled
// window, then scrubs it out of gshare's 12-bit global history with
// twelve always-taken pad branches. The probe branch inside the window
// has a perfectly predictable outcome (the iteration parity), so on a
// gshare core nothing in the window depends on the secret: the probe's
// PHT index sees only pad outcomes, and the secret branch's squashes
// are confined to the gap.
//
// A TAGE predictor is a different machine: its long-history tables index
// the probe branch with the secret sitting at depth 13 of the global
// history, well past gshare's window. The provider-entry metadata that
// prediction carries through the pipeline — the fetch-target-queue
// payload the TAGE-PRED unit samples for in-flight branches — therefore
// takes secret-dependent values inside the window, while the probe still
// predicts correctly and the timing stays flat. The leak exists only on
// the TAGE cell, and only in predictor metadata.
//
// The fence at the top of each gap is a rendezvous: it stalls dispatch
// until the previous iteration drains, so no next-iteration branch
// enters the ROB while a window is open and the in-flight branch set a
// window samples is exactly this iteration's probe (plus the constant
// loop-back branch).
const tageLeakSource = `
	.equ N, 32
	.text
_start:
	la   s2, bits
	call sweep            # warmup
	roi.begin
	call sweep
	roi.end
	la   t0, expected
	ld   t0, 0(t0)
	sub  a0, a0, t0
	snez a0, a0
	j    do_exit

sweep:                    # returns checksum in a0
	addi sp, sp, -16
	sd   ra, 8(sp)
	li   s5, 0            # iteration index
	li   s6, 0            # checksum
	li   s4, 0            # parity (probe-branch direction)
sw_loop:
	fence                 # rendezvous: drain before the secret resolves
	add  t0, s2, s5
	lbu  s10, 0(t0)       # secret bit for this iteration
	beqz s10, sb_skip     # SECRET branch: direction is the bit itself
	nop
sb_skip:
	beq  zero, zero, pad1 # 12 always-taken pads scrub the secret out of
pad1:
	beq  zero, zero, pad2 # gshare's 12-bit history window before the
pad2:
	beq  zero, zero, pad3 # probe branch is predicted
pad3:
	beq  zero, zero, pad4
pad4:
	beq  zero, zero, pad5
pad5:
	beq  zero, zero, pad6
pad6:
	beq  zero, zero, pad7
pad7:
	beq  zero, zero, pad8
pad8:
	beq  zero, zero, pad9
pad9:
	beq  zero, zero, pad10
pad10:
	beq  zero, zero, pad11
pad11:
	beq  zero, zero, pad12
pad12:
	iter.begin s10
	slli t0, s6, 1        # rotate the checksum; these ops also pad the
	srli t1, s6, 63       # commit bundle so the probe branch is still in
	or   s6, t0, t1       # flight on the window's first sampled cycle
	beqz s4, pb_skip      # PROBE branch: outcome = iteration parity,
	nop                   # predictable by both predictors
pb_skip:
	slli t2, s10, 1       # xor the bit and parity into the checksum
	xor  t2, t2, s4
	xor  s6, s6, t2
	addi t3, s6, 7
	xor  t4, t3, t2
	add  t5, t4, t1
	iter.end
	xori s4, s4, 1
	addi s5, s5, 1
	li   t0, N
	bltu s5, t0, sw_loop
	mv   a0, s6
	ld   ra, 8(sp)
	addi sp, sp, 16
	ret
` + exitSequence + `
	.data
expected: .dword 0
bits:     .zero 32
`

// tageLeakSetup writes a random-but-balanced bit sequence and the
// checksum reference.
func tageLeakSetup(run int, m *sim.Machine, prog *asm.Program) error {
	rng := rand.New(rand.NewSource(0x7A_0000 + int64(run)))
	mem := m.Memory()
	bitsAddr, ok := prog.Symbol("bits")
	if !ok {
		return fmt.Errorf("tageleak: symbol bits missing")
	}
	checksum := uint64(0)
	parity := uint64(0)
	for i := 0; i < tageIters; i++ {
		bit := uint64(rng.Intn(2))
		mem.Write(bitsAddr+uint64(i), 1, bit)
		checksum = checksum<<1 | checksum>>63
		checksum ^= bit<<1 ^ parity
		parity ^= 1
	}
	mem.Write(prog.MustSymbol("expected"), 8, checksum)
	return nil
}

// TAGELeak is the deep-history predictor case study: code whose only
// secret dependence inside the window is the global-history context of
// a perfectly predicted branch — invisible to gshare, observable as
// TAGE provider metadata.
func TAGELeak() (core.Workload, error) {
	w := core.Workload{
		Name:   "TAGE-HIST",
		Source: tageLeakSource,
		Setup:  tageLeakSetup,
	}
	if _, err := asm.Assemble(w.Source); err != nil {
		return core.Workload{}, fmt.Errorf("TAGE-HIST: %w", err)
	}
	return w, nil
}
