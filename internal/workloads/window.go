package workloads

import (
	"fmt"
	"math/rand"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

// The windowed-exponentiation case studies exercise multi-class
// analysis: fixed-window exponentiation processes the exponent in 2-bit
// windows, so each iteration's secret class takes four values (the
// paper notes that real algorithms operate on "windows of bits", which
// makes full input coverage feasible).
//
//   - ME-WIN4-LKUP: the table of powers g[w] = a^w mod m is indexed
//     directly by the secret window — the classic secret-dependent
//     lookup that sliding-window RSA implementations were attacked
//     through (CacheBleed et al.).
//   - ME-WIN4-SAFE: the same algorithm with a constant-time scan: all
//     four table entries are read every iteration and the right one is
//     selected with mask arithmetic.

// windowData lays each power of the table on its own cache line so a
// window value selects a distinct line (and the safe variant's scan
// touches all four uniformly).
const windowData = `
	.data
a_val:     .dword 0
mod_val:   .dword 0
expected:  .dword 0
exp_val:   .dword 0
	.align 6
g_table:   .zero 256      # g[w] at g_table + w*64
r_slot:    .dword 0
`

// windowDriver builds the driver around a lookup block that must leave
// g[w] in t5, given the window value in s1 (0..3) and the table base in
// s6. Registers: s2=a, s3=mod, s4=exp, s5=window index, s6=&g_table.
func windowDriver(lookup string) string {
	return `
	.text
_start:
	la   t0, a_val
	ld   s2, 0(t0)
	la   t0, mod_val
	ld   s3, 0(t0)
	la   t0, exp_val
	ld   s4, 0(t0)
	la   s6, g_table
	# Precompute the table of powers: g[w] = a^w mod m.
	li   t0, 1
	sd   t0, 0(s6)
	sd   s2, 64(s6)
	mul  t1, s2, s2
	remu t1, t1, s3
	sd   t1, 128(s6)
	mul  t1, t1, s2
	remu t1, t1, s3
	sd   t1, 192(s6)
	call modexp_win       # warmup pass
	roi.begin
	call modexp_win
	roi.end
	la   t1, expected
	ld   t1, 0(t1)
	sub  a0, a0, t1
	snez a0, a0
	j    do_exit

modexp_win:               # returns result in a0
	addi sp, sp, -16
	sd   ra, 8(sp)
	li   t6, 1            # r
	la   t0, r_slot
	sd   t6, 0(t0)
	li   s5, 15           # 16 windows of 2 bits, MSB first
mw_loop:
	fence                 # quiesce between iterations
	slli t0, s5, 1
	srl  t1, s4, t0
	andi s1, t1, 3        # window value: the 4-valued secret class
	# The last window's iteration is unmarked (see the modexp driver).
	beqz s5, mw_skip_begin
	iter.begin s1
mw_skip_begin:
	la   t0, r_slot
	ld   t6, 0(t0)
	mul  t6, t6, t6
	remu t6, t6, s3       # r = r^2
	mul  t6, t6, t6
	remu t6, t6, s3       # r = r^4
` + lookup + `
	mul  t6, t6, t5
	remu t6, t6, s3       # r *= g[w]
	la   t0, r_slot
	sd   t6, 0(t0)
	beqz s5, mw_skip_end
	iter.end
mw_skip_end:
	addi s5, s5, -1
	bgez s5, mw_loop
	la   t0, r_slot
	ld   a0, 0(t0)
	ld   ra, 8(sp)
	addi sp, sp, 16
	ret
` + exitSequence + windowData
}

// lookupDirect indexes the table with the secret window value.
const lookupDirect = `
	slli t0, s1, 6
	add  t0, t0, s6
	ld   t5, 0(t0)        # g[w]: secret-dependent address
`

// lookupScan reads all four entries and mask-selects the right one.
const lookupScan = `
	li   t5, 0
	li   t2, 0            # i
ls_scan:
	xor  t3, t2, s1       # eq(i, w) mask
	snez t3, t3
	addi t3, t3, -1
	slli t0, t2, 6
	add  t0, t0, s6
	ld   t4, 0(t0)
	and  t4, t4, t3
	or   t5, t5, t4
	addi t2, t2, 1
	li   t0, 4
	bltu t2, t0, ls_scan
`

// windowRef computes fixed-window exponentiation, MSB window first.
func windowRef(a, mod, exp uint64) uint64 {
	r := uint64(1)
	for i := 15; i >= 0; i-- {
		w := exp >> uint(2*i) & 3
		r = r * r % mod
		r = r * r % mod
		g := uint64(1)
		for k := uint64(0); k < w; k++ {
			g = g * a % mod
		}
		r = r * g % mod
	}
	return r
}

func windowSetup(run int, m *sim.Machine, prog *asm.Program) error {
	rng := rand.New(rand.NewSource(0x3149_0000 + int64(run)))
	mod := uint64(rng.Int31())>>1 | 1<<29 | 1
	a := uint64(rng.Int63())%(mod-2) + 2
	exp := uint64(rng.Uint32())

	mem := m.Memory()
	sym, ok := prog.Symbol("a_val")
	if !ok {
		return fmt.Errorf("window: symbol a_val missing")
	}
	mem.Write(sym, 8, a)
	mem.Write(prog.MustSymbol("mod_val"), 8, mod)
	mem.Write(prog.MustSymbol("exp_val"), 8, exp)
	mem.Write(prog.MustSymbol("expected"), 8, windowRef(a, mod, exp))
	return nil
}

func windowWorkload(name, lookup string) (core.Workload, error) {
	w := core.Workload{
		Name:   name,
		Source: windowDriver(lookup),
		Setup:  windowSetup,
	}
	if _, err := asm.Assemble(w.Source); err != nil {
		return core.Workload{}, fmt.Errorf("%s: %w", name, err)
	}
	return w, nil
}

// WindowLookup is ME-WIN4-LKUP: windowed exponentiation with a
// secret-indexed table of powers.
func WindowLookup() (core.Workload, error) {
	return windowWorkload("ME-WIN4-LKUP", lookupDirect)
}

// WindowSafe is ME-WIN4-SAFE: the constant-time scan-select variant.
func WindowSafe() (core.Workload, error) {
	return windowWorkload("ME-WIN4-SAFE", lookupScan)
}
