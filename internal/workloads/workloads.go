// Package workloads contains the security-critical kernels of the
// paper's case studies (Section VII), written in the RV64 assembly
// dialect of internal/asm and faithful to the paper's listings:
//
//   - ME-NAIVE:   the classic square-and-multiply of Listing 1, with a
//     secret-dependent multiply (the paper's Fig. 1 walkthrough).
//   - ME-V1-CV:   libgcrypt-style conditional copy compiled into the
//     unbalanced branch sequence of Listing 4 (compiler vulnerability).
//   - ME-V1-MV:   the branchless pointer-select variant of Listing 5
//     (microarchitectural vulnerability: secret-dependent addresses).
//   - ME-V2-Safe: the BearSSL byte-masked conditional copy of Listing 6.
//   - ME-V2-FB:   ME-V2-Safe run on a core with the fast-bypass
//     optimisation (built by enabling sim.Config.FastBypass).
//   - CT-MEM-CMP: OpenSSL's CRYPTO_memcmp with a dependent branch
//     (Listings 7 and 8).
//   - The 27 branchless OpenSSL constant_time_* primitives of Table V.
//
// Every workload embeds a correctness self-check: the program exits
// non-zero if the computed result disagrees with the reference value
// written by its Setup function, so a verification run doubles as a
// functional test of the kernel on the simulated core.
package workloads

import (
	"fmt"
	"sort"

	"microsampler/internal/core"
)

// exitSequence terminates the program with the exit code in a0.
const exitSequence = `
do_exit:
	li   a7, 93
	ecall
`

// memmoveAsm is a doubleword-granular forward copy: memmove(a0=dst,
// a1=src, a2=len with len a multiple of 8), the shape a real memmove
// takes for the aligned word-sized limbs of bignum buffers.
const memmoveAsm = `
memmove:
	beqz a2, mm_done
	mv   t1, a0
mm_loop:
	ld   t2, 0(a1)
	sd   t2, 0(t1)
	addi a1, a1, 8
	addi t1, t1, 8
	addi a2, a2, -8
	bnez a2, mm_loop
mm_done:
	ret
`

// registry of all workload constructors by case-study name.
func registry() map[string]func() (core.Workload, error) {
	r := map[string]func() (core.Workload, error){
		"ME-NAIVE":      func() (core.Workload, error) { return ModexpNaive() },
		"ME-V1-CV":      func() (core.Workload, error) { return ModexpV1CV() },
		"ME-V1-MV":      func() (core.Workload, error) { return ModexpV1MV() },
		"ME-V1-MV-6A":   func() (core.Workload, error) { return ModexpV1MVFig6A() },
		"ME-V1-MV-6B":   func() (core.Workload, error) { return ModexpV1MVFig6B() },
		"ME-V2-SAFE":    func() (core.Workload, error) { return ModexpV2Safe() },
		"CT-MEM-CMP":    func() (core.Workload, error) { return MemcmpCT() },
		"CRYPTO_memcmp": func() (core.Workload, error) { return MemcmpCT() },
		"CT-DIV":        func() (core.Workload, error) { return DivLeak() },
		"AES-TTABLE":    func() (core.Workload, error) { return AESTTable() },
		"AES-PRELOAD":   func() (core.Workload, error) { return AESPreload() },
		"ME-WIN4-LKUP":  func() (core.Workload, error) { return WindowLookup() },
		"ME-WIN4-SAFE":  func() (core.Workload, error) { return WindowSafe() },
		"CHACHA20":      func() (core.Workload, error) { return ChaCha20() },
		"SPECTRE-PHT":   func() (core.Workload, error) { return SpectrePHT() },
		"TAGE-HIST":     func() (core.Workload, error) { return TAGELeak() },
		"SPF-STREAM":    func() (core.Workload, error) { return StrideLeak() },
	}
	for _, name := range OpenSSLPrimitiveNames() {
		r[name] = func() (core.Workload, error) { return OpenSSLPrimitive(name) }
	}
	return r
}

// Names returns every registered workload name, sorted.
func Names() []string {
	reg := registry()
	out := make([]string, 0, len(reg))
	for n := range reg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName constructs a workload by its case-study name.
func ByName(name string) (core.Workload, error) {
	ctor, ok := registry()[name]
	if !ok {
		return core.Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return ctor()
}
