package workloads

import (
	"testing"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

// runOnce executes a workload's program once on a fresh machine (run 0)
// and returns the result, failing the test on any error or a non-zero
// exit (every workload self-checks its computation).
func runOnce(t *testing.T, w core.Workload, cfg sim.Config) sim.Result {
	t.Helper()
	prog, err := asm.Assemble(w.Source)
	if err != nil {
		t.Fatalf("%s: assemble: %v", w.Name, err)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if w.Setup != nil {
		if err := w.Setup(0, m, prog); err != nil {
			t.Fatalf("%s: setup: %v", w.Name, err)
		}
	}
	res, err := m.Run(20_000_000)
	if err != nil {
		t.Fatalf("%s: run: %v", w.Name, err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("%s: self-check failed (exit %d)", w.Name, res.ExitCode)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) < 30 {
		t.Fatalf("registry has %d workloads, expected >= 30 (got %v)",
			len(names), names)
	}
	for _, n := range names {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestTableVCatalogueSize(t *testing.T) {
	// The paper tests 28 OpenSSL constant-time primitives: 27 branchless
	// kernels plus CRYPTO_memcmp.
	if got := len(OpenSSLPrimitiveNames()); got != 27 {
		t.Errorf("primitive catalogue has %d entries, want 27", got)
	}
}

func TestModexpVariantsComputeCorrectly(t *testing.T) {
	for _, name := range []string{
		"ME-NAIVE", "ME-V1-CV", "ME-V1-MV", "ME-V1-MV-6A", "ME-V1-MV-6B",
		"ME-V2-SAFE",
	} {
		t.Run(name, func(t *testing.T) {
			w, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			runOnce(t, w, sim.MegaBoom())
		})
	}
}

func TestModexpOnSmallBoomAndFastBypass(t *testing.T) {
	w, err := ByName("ME-V2-SAFE")
	if err != nil {
		t.Fatal(err)
	}
	runOnce(t, w, sim.SmallBoom())
	fb := sim.MegaBoom()
	fb.FastBypass = true
	runOnce(t, w, fb) // the optimisation must not change results
}

func TestModexpDifferentRunsDifferentKeys(t *testing.T) {
	w, err := ByName("ME-V2-SAFE")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[uint64]bool)
	for run := 0; run < 3; run++ {
		m, _ := sim.New(sim.SmallBoom())
		if err := m.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		if err := w.Setup(run, m, prog); err != nil {
			t.Fatal(err)
		}
		exp := m.Memory().Read(prog.MustSymbol("exp_bytes"), 4)
		keys[exp] = true
	}
	if len(keys) != 3 {
		t.Errorf("expected 3 distinct keys, got %d", len(keys))
	}
}

func TestModexpRefMatchesBigIntStyle(t *testing.T) {
	// Cross-check modexpRef against a direct bit-by-bit implementation.
	mod := uint64(1000003)
	a := uint64(31337)
	exp := [4]byte{0x12, 0x34, 0x56, 0x78}
	want := uint64(1)
	e := uint64(exp[3])<<24 | uint64(exp[2])<<16 | uint64(exp[1])<<8 | uint64(exp[0])
	for bit := 31; bit >= 0; bit-- {
		want = want * want % mod
		if e>>uint(bit)&1 == 1 {
			want = want * a % mod
		}
	}
	if got := modexpRef(a, mod, exp); got != want {
		t.Errorf("modexpRef = %d want %d", got, want)
	}
}

func TestWindowVariantsComputeCorrectly(t *testing.T) {
	for _, name := range []string{"ME-WIN4-LKUP", "ME-WIN4-SAFE"} {
		t.Run(name, func(t *testing.T) {
			w, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			runOnce(t, w, sim.MegaBoom())
		})
	}
}

func TestWindowRefMatchesPlainModexp(t *testing.T) {
	// windowRef must agree with bit-by-bit square-and-multiply.
	mod := uint64(999999937)
	a := uint64(123456789)
	exp := uint64(0xDEADBEEF)
	want := uint64(1)
	for bit := 31; bit >= 0; bit-- {
		want = want * want % mod
		if exp>>uint(bit)&1 == 1 {
			want = want * a % mod
		}
	}
	if got := windowRef(a, mod, exp); got != want {
		t.Errorf("windowRef = %d want %d", got, want)
	}
}

func TestDivLeakComputesCorrectly(t *testing.T) {
	w, err := DivLeak()
	if err != nil {
		t.Fatal(err)
	}
	runOnce(t, w, sim.MegaBoom())
	ddCfg := sim.MegaBoom()
	ddCfg.DataDepDivide = true
	runOnce(t, w, ddCfg) // the divider model must not change results
}

func TestMemcmpComputesCorrectly(t *testing.T) {
	w, err := MemcmpCT()
	if err != nil {
		t.Fatal(err)
	}
	runOnce(t, w, sim.MegaBoom())
}

func TestMemcmpClassPatternMixed(t *testing.T) {
	p := memcmpClassPattern()
	ones := 0
	for _, c := range p {
		ones += int(c)
	}
	if ones < 8 || ones > 24 {
		t.Errorf("class pattern unbalanced: %d/%d equal pairs", ones, len(p))
	}
}

func TestAllOpenSSLPrimitivesComputeCorrectly(t *testing.T) {
	for _, name := range OpenSSLPrimitiveNames() {
		t.Run(name, func(t *testing.T) {
			w, err := OpenSSLPrimitive(name)
			if err != nil {
				t.Fatal(err)
			}
			runOnce(t, w, sim.MegaBoom())
		})
	}
}

func TestPrimitiveRefsSelfConsistent(t *testing.T) {
	// The class function must be consistent with the reference result
	// for the predicate primitives: mask result <=> class bit.
	for _, p := range primitives() {
		switch p.name {
		case "constant_time_eq", "constant_time_lt", "constant_time_is_zero",
			"constant_time_ge", "constant_time_lt_bn":
			for i := 0; i < 200; i++ {
				x, y := uint64(i*7919), uint64(i*104729%977)
				if i%3 == 0 {
					y = x
				}
				if i%5 == 0 {
					x = 0
				}
				mask := p.ref(x, y)
				if mask != 0 && mask != ^uint64(0) {
					t.Fatalf("%s: ref(%d,%d) = %#x not a mask", p.name, x, y, mask)
				}
				if (mask == ^uint64(0)) != (p.class(x, y) == 1) {
					t.Errorf("%s: class/ref disagree at (%d,%d)", p.name, x, y)
				}
			}
		}
	}
}

func TestSpectreComputesCorrectly(t *testing.T) {
	w, err := SpectrePHT()
	if err != nil {
		t.Fatal(err)
	}
	runOnce(t, w, sim.MegaBoom())
}
