// Package microsampler is a framework for microarchitecture-level
// leakage detection in constant-time code, reproducing the system of
// "MicroSampler: A Framework for Microarchitecture-Level Leakage
// Detection in Constant Time Execution" (DSN 2025).
//
// The framework runs a program under test on a deterministic cycle-level
// simulation of an out-of-order RISC-V core (modeled after the Berkeley
// BOOM design), samples the state of sixteen microarchitectural units
// every cycle inside the program's security-critical region, groups the
// samples into per-iteration snapshots labeled with the secret values
// being processed, and measures the statistical association between
// snapshots and secrets with Cramér's V, validated by the chi-squared
// p-value. Units with statistically significant strong association are
// flagged and their root causes extracted through feature uniqueness and
// feature ordering analysis.
//
// # Quick start
//
//	w, err := microsampler.WorkloadByName("ME-V2-SAFE")
//	if err != nil { ... }
//	rep, err := microsampler.Verify(w, microsampler.Options{Runs: 8})
//	if err != nil { ... }
//	fmt.Print(microsampler.RenderSummary(rep))
//	fmt.Print(microsampler.RenderChart(rep))
//
// Programs under test are written in RV64 assembly (see the asm
// subpackage dialect) and delimit their security-critical region with
// the MARK tracing pseudo-instructions:
//
//	roi.begin / roi.end       — bound the sampled region
//	iter.begin rs / iter.end  — bound one algorithmic iteration, with
//	                            the secret class value in register rs
//
// The package re-exports the building blocks so downstream users can
// assemble their own pipelines: the simulator configuration (MegaBoom
// and SmallBoom, Table III of the paper), the tracked units (Table IV),
// the case-study workload catalogue (Section VII), the formal-baseline
// checker (Table VII), and the miniature constant-time compiler used by
// the compiler-vulnerability study.
package microsampler

import (
	"context"

	"microsampler/internal/asm"
	"microsampler/internal/cache"
	"microsampler/internal/cluster"
	"microsampler/internal/core"
	"microsampler/internal/ctc"
	"microsampler/internal/formal"
	"microsampler/internal/history"
	"microsampler/internal/report"
	"microsampler/internal/sim"
	"microsampler/internal/telemetry"
	"microsampler/internal/telemetry/export"
	"microsampler/internal/trace"
	"microsampler/internal/version"
	"microsampler/internal/workloads"
)

// Config parameterises the simulated core (Table III).
type Config = sim.Config

// Machine is a configured simulator instance; workload Setup functions
// receive one to initialise memory with per-run inputs.
type Machine = sim.Machine

// Program is an assembled binary image.
type Program = asm.Program

// MegaBoom returns the large out-of-order configuration of Table III.
func MegaBoom() Config { return sim.MegaBoom() }

// SmallBoom returns the small configuration of Table III.
func SmallBoom() Config { return sim.SmallBoom() }

// Unit identifies a tracked microarchitectural feature (Table IV).
type Unit = trace.Unit

// Tracked units, in Table IV order.
const (
	SQADDR     = trace.SQADDR
	SQPC       = trace.SQPC
	LQADDR     = trace.LQADDR
	LQPC       = trace.LQPC
	ROBOCPNCY  = trace.ROBOCPNCY
	ROBPC      = trace.ROBPC
	LFBDATA    = trace.LFBDATA
	LFBADDR    = trace.LFBADDR
	EUUALU     = trace.EUUALU
	EUUADDRGEN = trace.EUUADDRGEN
	EUUDIV     = trace.EUUDIV
	EUUMUL     = trace.EUUMUL
	NLPADDR    = trace.NLPADDR
	CACHEADDR  = trace.CACHEADDR
	TLBADDR    = trace.TLBADDR
	MSHRADDR   = trace.MSHRADDR
	TAGEPRED   = trace.TAGEPRED
	SPFADDR    = trace.SPFADDR
)

// AllUnits returns every tracked unit.
func AllUnits() []Unit { return trace.AllUnits() }

// Workload is a program under verification plus its input generator.
type Workload = core.Workload

// Options configures a verification run.
type Options = core.Options

// RetryPolicy bounds the per-run retry loop (Options.Retry): failed
// runs whose error is classified transient are retried up to Max times
// with exponential backoff and full jitter.
type RetryPolicy = core.RetryPolicy

// NoWarmup requests explicitly zero warmup iterations; a plain zero
// Warmup keeps the package default.
const NoWarmup = core.NoWarmup

// Progress is the payload of the Options.OnProgress callback: one call
// per completed simulation run.
type Progress = core.Progress

// SimStats aggregates the simulator's performance counters across runs.
type SimStats = core.SimStats

// MetricsRegistry is a goroutine-safe registry of counters, gauges and
// histograms; pass one in Options.Metrics to collect pipeline metrics.
type MetricsRegistry = telemetry.Registry

// Span is one timed region of the Verify pipeline; Report.Spans holds
// the full trace tree and Options.TraceSink receives each span as one
// JSON line.
type Span = telemetry.Span

// DurStats is a duration distribution (min/mean/p95/max).
type DurStats = telemetry.DurStats

// Metrics returns the process-wide default metrics registry.
func Metrics() *MetricsRegistry { return telemetry.Default }

// NewMetrics returns a fresh, empty metrics registry.
func NewMetrics() *MetricsRegistry { return telemetry.NewRegistry() }

// RenderMetrics renders a registry as sorted human-readable text.
func RenderMetrics(m *MetricsRegistry) string { return m.RenderText() }

// RenderMetricsJSON renders a registry as a stable JSON document.
func RenderMetricsJSON(m *MetricsRegistry) ([]byte, error) { return m.RenderJSON() }

// Report is a complete verification outcome.
type Report = core.Report

// UnitResult is the per-unit statistical verdict.
type UnitResult = core.UnitResult

// IterSample is one labeled iteration's summary.
type IterSample = trace.IterSample

// Verify runs the MicroSampler pipeline on a workload: simulate with
// tracing, snapshot and hash, analyze associations, extract features.
func Verify(w Workload, opts Options) (*Report, error) {
	return core.Verify(w, opts)
}

// VerifyContext is Verify with cancellation: a cancelled context aborts
// between simulation runs.
func VerifyContext(ctx context.Context, w Workload, opts Options) (*Report, error) {
	return core.VerifyContext(ctx, w, opts)
}

// Content-addressed verdict cache.
//
// Verification is deterministic — the calibration gate proves
// byte-identical output across runs — so a report is a pure function of
// (program bytes, machine configuration, seed range, detection-relevant
// options). VerifyCache memoises that function: set Options.Cache and
// repeat verifications of the same tuple return the cached *Report in
// microseconds instead of simulating.

// VerifyCache is a bounded in-memory LRU of verification reports, safe
// for concurrent use. Cached reports are shared, not copied — treat
// them as immutable.
type VerifyCache = cache.LRU

// CacheStats is a point-in-time reading of a cache's effectiveness.
type CacheStats = cache.Stats

// NewVerifyCache returns an empty cache holding at most max reports.
func NewVerifyCache(max int) *VerifyCache { return cache.NewLRU(max) }

// DiskCache is a content-addressed blob store: opaque byte values
// filed under their canonical key, written atomically (temp file,
// fsync, rename). It is the persistence layer under a VerifyCache; the
// CLI and the msd daemon use one to serve repeat runs across process
// restarts.
type DiskCache = cache.Disk

// OpenDiskCache opens (creating as needed) a blob store rooted at dir.
func OpenDiskCache(dir string) (*DiskCache, error) { return cache.NewDisk(dir) }

// CacheKey returns the canonical content-addressed key of a
// verification: the SHA-256 of the assembled program, the machine
// configuration and every detection-relevant option, with defaults
// applied first so spelled-out defaults and omitted ones key
// identically. Execution strategy (parallelism, retries, probes,
// sinks) is excluded — it cannot change the verdict.
func CacheKey(w Workload, opts Options) (string, error) {
	return core.CacheKey(w, opts)
}

// MatrixCacheKey is CacheKey for a grid sweep: the base tuple plus the
// grid's cell names.
func MatrixCacheKey(w Workload, opts MatrixOptions) (string, error) {
	return core.MatrixCacheKey(w, opts)
}

// WorkloadByName returns one of the built-in case-study workloads:
// ME-NAIVE, ME-V1-CV, ME-V1-MV, ME-V1-MV-6A, ME-V1-MV-6B, ME-V2-SAFE,
// CT-MEM-CMP, and the constant_time_* primitives of Table V.
func WorkloadByName(name string) (Workload, error) {
	return workloads.ByName(name)
}

// WorkloadNames lists the built-in case studies.
func WorkloadNames() []string { return workloads.Names() }

// OpenSSLPrimitiveNames lists the Table V primitive sweeps.
func OpenSSLPrimitiveNames() []string { return workloads.OpenSSLPrimitiveNames() }

// ModexpWithConditionalCopy builds the modular-exponentiation case-study
// driver around a user-supplied (e.g. compiled) conditional copy: funcs
// must define `ccopy(ctl, dst, dummy, src, len)` and anything it calls.
func ModexpWithConditionalCopy(name, funcs string) (Workload, error) {
	return workloads.ModexpWithConditionalCopy(name, funcs)
}

// Assemble assembles RV64 source in the framework's dialect.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// NewMachine builds a bare simulator for custom harnesses.
func NewMachine(cfg Config) (*Machine, error) { return sim.New(cfg) }

// Rendering helpers (terminal text in the style of the paper's figures).

// RenderSummary returns the one-line verdict and leaky-unit list.
func RenderSummary(rep *Report) string { return report.Summary(rep) }

// RenderChart returns the per-unit Cramér's V bar chart (Figs. 3/4/7/10).
func RenderChart(rep *Report) string { return report.CramersVChart(rep) }

// RenderTimingChart returns the with/without-timing paired chart (Fig. 9).
func RenderTimingChart(rep *Report) string { return report.CramersVTimingChart(rep) }

// RenderHistogram returns per-class iteration timing distributions (Fig. 6).
func RenderHistogram(title string, iters []IterSample) string {
	return report.TimingHistogram(title, iters)
}

// MeanCyclesByClass returns mean iteration cycles per secret class.
func MeanCyclesByClass(iters []IterSample) map[uint64]float64 {
	return report.MeanCycles(iters)
}

// RenderContingency returns a unit's contingency table (Table II).
func RenderContingency(rep *Report, unit Unit, maxCols int) string {
	return report.ContingencyTable(rep, unit, maxCols)
}

// RenderFeatures returns a unit's root-cause extraction (Fig. 5).
func RenderFeatures(rep *Report, unit Unit) string {
	return report.Features(rep, unit)
}

// RenderStages returns the pipeline stage-time breakdown (Table VI).
func RenderStages(rep *Report) string { return report.StageBreakdown(rep) }

// RenderJSON returns the report in the stable machine-readable schema
// (per-unit Cramér's V, bias-corrected V, p-value, mutual information,
// unique features).
func RenderJSON(rep *Report) ([]byte, error) { return report.JSON(rep) }

// Exportable observability surfaces (Prometheus, Perfetto, heatmaps).

// Heatmap is the units × iteration-window leakage matrix of a report:
// per-window Cramér's V for every tracked unit, showing *when* during
// the execution each unit correlated with the secret.
type Heatmap = report.Heatmap

// PerfettoTrace is a Chrome trace-event document; open it in
// ui.perfetto.dev or chrome://tracing.
type PerfettoTrace = export.PerfettoTrace

// BuildHeatmap bins a report's per-iteration evidence into `windows`
// contiguous iteration windows (non-positive selects the default, 16).
func BuildHeatmap(rep *Report, windows int) (*Heatmap, error) {
	return report.BuildHeatmap(rep, windows)
}

// RenderHeatmapJSON returns a report's leakage heatmap as deterministic
// JSON (byte-identical across repeated runs of the same seed).
func RenderHeatmapJSON(rep *Report, windows int) ([]byte, error) {
	hm, err := report.BuildHeatmap(rep, windows)
	if err != nil {
		return nil, err
	}
	return hm.JSON()
}

// RenderHeatmapHTML returns a report's leakage heatmap as a
// self-contained single-file HTML document with an inline SVG matrix.
func RenderHeatmapHTML(rep *Report, windows int) (string, error) {
	hm, err := report.BuildHeatmap(rep, windows)
	if err != nil {
		return "", err
	}
	return hm.HTML(), nil
}

// RenderPerfetto converts a report's span tree into a Perfetto/Chrome
// trace-event document.
func RenderPerfetto(rep *Report) *PerfettoTrace { return export.Perfetto(rep.Spans) }

// Leakage provenance, flight recorder and live introspection.

// Provenance is the instruction-level attribution of a verification:
// the program counters whose event streams statistically separate the
// secret classes, ranked by Cramér's V.
type Provenance = report.Provenance

// ProvEntry is one ranked provenance attribution.
type ProvEntry = report.ProvEntry

// BuildProvenance ranks a report's per-instruction leakage evidence.
func BuildProvenance(rep *Report) (*Provenance, error) {
	return report.BuildProvenance(rep)
}

// RenderProvenanceJSON returns the ranked provenance as deterministic
// JSON.
func RenderProvenanceJSON(rep *Report) ([]byte, error) {
	pv, err := report.BuildProvenance(rep)
	if err != nil {
		return nil, err
	}
	return pv.JSON()
}

// RenderProvenanceHTML returns the ranked provenance as a
// self-contained HTML document, with disassembly context around the
// top entries.
func RenderProvenanceHTML(rep *Report) (string, error) {
	pv, err := report.BuildProvenance(rep)
	if err != nil {
		return "", err
	}
	return pv.HTMLWithDisasm(rep.Program, 5, 4), nil
}

// GridSpec is a declarative microarchitecture grid: the configuration
// axes a matrix verification sweeps (base core, fast bypass, divider,
// prefetcher, branch predictor).
type GridSpec = core.GridSpec

// GridAxis is one swept axis of a grid.
type GridAxis = core.Axis

// MatrixOptions configures a grid sweep; the embedded Options apply to
// every cell.
type MatrixOptions = core.MatrixOptions

// Matrix is the outcome of a grid sweep: one verdict per configuration
// cell.
type Matrix = core.Matrix

// MatrixCellResult is one grid cell's verdict.
type MatrixCellResult = core.CellResult

// MatrixArtifact is the serialisable matrix artifact: per-cell verdicts
// plus leak provenance for the leaky cells.
type MatrixArtifact = report.MatrixArtifact

// ParseGridSpec parses a textual grid spec, e.g.
// "base=small,mega;prefetch=none,stride;predictor=gshare,tage".
func ParseGridSpec(s string) (GridSpec, error) { return core.ParseGridSpec(s) }

// DefaultGrid is the default sweep: both base cores against the
// prefetcher and predictor models.
func DefaultGrid() GridSpec { return core.DefaultGrid() }

// VerifyMatrix verifies the workload on every cell of a configuration
// grid — the full pipeline per cell, with per-cell failure containment
// and a deterministic cell order.
func VerifyMatrix(w Workload, opts MatrixOptions) (*Matrix, error) {
	return core.VerifyMatrix(w, opts)
}

// VerifyMatrixContext is VerifyMatrix with cancellation.
func VerifyMatrixContext(ctx context.Context, w Workload, opts MatrixOptions) (*Matrix, error) {
	return core.VerifyMatrixContext(ctx, w, opts)
}

// BuildMatrix distils a sweep into its artifact, attaching the top
// provenance entries to every leaky cell.
func BuildMatrix(m *Matrix) *MatrixArtifact { return report.BuildMatrix(m, 0) }

// RenderMatrixJSON returns the matrix artifact as deterministic JSON —
// byte-identical across repeated sweeps of the same seed, whatever the
// parallelism.
func RenderMatrixJSON(m *Matrix) ([]byte, error) { return report.BuildMatrix(m, 0).JSON() }

// RenderMatrixHTML returns the matrix artifact as a self-contained HTML
// verdict heatmap.
func RenderMatrixHTML(m *Matrix) string { return report.BuildMatrix(m, 0).HTML() }

// FlightDump is a flight-recorder post-mortem: the last N cycles of
// per-unit occupancy before a run died (Options.FlightRecorderFrames).
type FlightDump = sim.FlightDump

// RunFailure wraps a failed run's error with its flight-recorder dump.
type RunFailure = core.RunFailure

// FlightDumpFromError extracts the flight-recorder post-mortem from a
// Verify error, if one is attached.
func FlightDumpFromError(err error) (*FlightDump, bool) {
	return core.FlightDumpFromError(err)
}

// RenderFlightPerfetto converts a flight-recorder dump into a Perfetto
// counter trace.
func RenderFlightPerfetto(d *FlightDump) *PerfettoTrace {
	return export.FlightPerfetto(d)
}

// RunProbe is a live progress view of one verification (Options.Probe):
// read Snapshot from any goroutine while Verify runs.
type RunProbe = core.RunProbe

// ProbeSnapshot is one reading of a RunProbe.
type ProbeSnapshot = core.ProbeSnapshot

// NewRunProbe returns a fresh idle probe.
func NewRunProbe() *RunProbe { return core.NewRunProbe() }

// RenderPrometheus renders a metrics registry in the Prometheus text
// exposition format (the document served at the msd daemon's /metrics).
func RenderPrometheus(m *MetricsRegistry) string { return export.PrometheusText(m) }

// Differential observability: run history and verdict diffing.

// HistoryStore is the append-only, crash-safe run-history store: one
// fsync'd JSONL index line per labeled run, artifacts filed
// content-addressed in a DiskCache blob store next to the index.
type HistoryStore = history.Store

// HistoryRecord is one line of the history index.
type HistoryRecord = history.Record

// History record kinds.
const (
	HistoryKindReport = history.KindReport
	HistoryKindMatrix = history.KindMatrix
)

// OpenHistory opens (creating as needed) the history store at dir.
func OpenHistory(dir string) (*HistoryStore, error) { return history.Open(dir) }

// ReportDigest is the diffable distillation of one verification:
// per-unit verdicts plus top provenance, JSON-round-trippable so it can
// seed BuildDiff from the history store or a committed baseline file.
type ReportDigest = report.ReportDigest

// BuildDigest distils a report into its diffable digest.
func BuildDigest(rep *Report) (*ReportDigest, error) { return report.BuildDigest(rep) }

// DiffOptions tunes the diff engine (labels, V-drift threshold).
type DiffOptions = report.DiffOptions

// ReportDiff is the deterministic delta between two report digests.
type ReportDiff = report.Diff

// MatrixDiff is the deterministic delta between two matrix sweeps:
// which cells changed verdict between commit A and commit B.
type MatrixDiff = report.MatrixDiff

// VerdictFlip is one unit or grid cell whose leaky verdict changed.
type VerdictFlip = report.VerdictFlip

// BuildDiff computes the delta between two report digests.
func BuildDiff(from, to *ReportDigest, opts DiffOptions) *ReportDiff {
	return report.BuildDiff(from, to, opts)
}

// BuildMatrixDiff computes the delta between two matrix artifacts.
func BuildMatrixDiff(from, to *MatrixArtifact, opts DiffOptions) *MatrixDiff {
	return report.BuildMatrixDiff(from, to, opts)
}

// Build provenance and version stamping.

// BuildVersion describes the running binary: module version, Go
// toolchain, and the VCS commit baked in by `go build`.
type BuildVersion = version.Info

// GetBuildVersion returns the binary's build provenance.
func GetBuildVersion() BuildVersion { return version.Get() }

// VersionLine formats the standard `-version` output line for cmd.
func VersionLine(cmd string) string { return version.Get().Line(cmd) }

// DefaultHistoryLabel is the label stamped on history records when the
// user supplies none: the short VCS commit (plus "-dirty"), or
// "unlabeled" when the binary carries no VCS info.
func DefaultHistoryLabel() string { return version.DefaultLabel() }

// BuildInfoGauge registers the conventional build_info gauge (value 1,
// version/goversion/revision/dirty labels) on a metrics registry.
func BuildInfoGauge(reg *MetricsRegistry, name string) { version.Gauge(reg, name) }

// Distributed verification (the msd coordinator/worker cluster).

// ClusterPoint is one program×configuration verification point of a
// batch — the unit of work the coordinator shards across workers. It
// is self-contained on the wire: any daemon can resolve it to a
// verification without batch context.
type ClusterPoint = cluster.Point

// ClusterPointResult is one point's terminal outcome: the
// deterministic verdict fields plus execution metadata (which worker
// answered, whether it was cached or degraded to local execution).
type ClusterPointResult = cluster.PointResult

// ClusterPointKey returns the point's canonical content-addressed
// cache key — the same core CacheKey a single-node verification of
// the identical tuple would use, which is what makes cross-node cache
// fill and reassignment dedup sound. maxCycles is the executing
// daemon's per-run bound.
func ClusterPointKey(p ClusterPoint, maxCycles int64) (string, error) {
	return p.Key(maxCycles)
}

// Constant-time compiler (compiler-vulnerability substrate).

// Strategy selects the compiler's conditional lowering.
type Strategy = ctc.Strategy

// Compiler lowering strategies.
const (
	LowerPlain    = ctc.LowerPlain
	LowerBalanced = ctc.LowerBalanced
	LowerPreload  = ctc.LowerPreload
)

// CompileCT compiles the miniature C-like language to RV64 assembly
// with the chosen lowering strategy.
func CompileCT(src string, strategy Strategy) (string, error) {
	return ctc.Compile(src, strategy)
}

// Formal baseline (Table VII scalability comparison).

// FormalResult summarises a formal two-safety verification run.
type FormalResult = formal.Result

// Netlist is a gate-level design accepted by the formal checker.
type Netlist = formal.Netlist

// FormalALU returns the small data-oblivious ALU design (1x size).
func FormalALU() *Netlist { return formal.ALUDesign() }

// FormalSCARV returns the toy in-order core design (8x size).
func FormalSCARV() *Netlist { return formal.SCARVDesign() }

// FormalCheck runs the two-safety product-state checker to a bounded
// depth.
func FormalCheck(n *Netlist, maxSteps int) (FormalResult, error) {
	return formal.Check(n, maxSteps)
}
