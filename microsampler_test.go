package microsampler_test

import (
	"strings"
	"testing"

	"microsampler"
)

func verify(t *testing.T, name string, cfg microsampler.Config, runs int) *microsampler.Report {
	t.Helper()
	w, err := microsampler.WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := microsampler.Verify(w, microsampler.Options{
		Config: cfg, Runs: runs, Warmup: 4, Parallel: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func leakySet(rep *microsampler.Report) map[microsampler.Unit]bool {
	out := map[microsampler.Unit]bool{}
	for _, u := range rep.LeakyUnits() {
		out[u.Unit] = true
	}
	return out
}

// TestCaseStudyVerdicts asserts the paper's headline detection results
// for every case study (Figs. 3, 4, 7, 9, 10).
func TestCaseStudyVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("full case-study verification is slow")
	}

	t.Run("ME-V2-SAFE is clean", func(t *testing.T) {
		rep := verify(t, "ME-V2-SAFE", microsampler.MegaBoom(), 4)
		if rep.AnyLeak() {
			t.Fatalf("safe kernel flagged: %s", microsampler.RenderSummary(rep))
		}
	})

	t.Run("ME-V1-CV leaks almost everywhere", func(t *testing.T) {
		rep := verify(t, "ME-V1-CV", microsampler.MegaBoom(), 4)
		if n := len(rep.LeakyUnits()); n < 12 {
			t.Fatalf("only %d units flagged: %s", n, microsampler.RenderSummary(rep))
		}
		leaks := leakySet(rep)
		for _, must := range []microsampler.Unit{
			microsampler.SQADDR, microsampler.SQPC, microsampler.ROBPC,
			microsampler.EUUALU,
		} {
			if !leaks[must] {
				t.Errorf("unit %v not flagged", must)
			}
		}
	})

	t.Run("ME-V1-MV leaks only through addresses", func(t *testing.T) {
		rep := verify(t, "ME-V1-MV", microsampler.MegaBoom(), 4)
		leaks := leakySet(rep)
		wantLeaky := []microsampler.Unit{
			microsampler.SQADDR, microsampler.LFBADDR, microsampler.NLPADDR,
			microsampler.CACHEADDR, microsampler.TLBADDR, microsampler.MSHRADDR,
		}
		wantClean := []microsampler.Unit{
			microsampler.SQPC, microsampler.LQPC, microsampler.ROBPC,
			microsampler.ROBOCPNCY, microsampler.EUUALU, microsampler.EUUMUL,
			microsampler.EUUDIV, microsampler.EUUADDRGEN, microsampler.LQADDR,
		}
		for _, u := range wantLeaky {
			if !leaks[u] {
				t.Errorf("address unit %v not flagged", u)
			}
		}
		for _, u := range wantClean {
			if leaks[u] {
				t.Errorf("non-address unit %v wrongly flagged", u)
			}
		}
	})

	t.Run("ME-V2-FB fast bypass breaks the safe kernel", func(t *testing.T) {
		cfg := microsampler.MegaBoom()
		cfg.FastBypass = true
		rep := verify(t, "ME-V2-SAFE", cfg, 4)
		if !rep.AnyLeak() {
			t.Fatal("fast-bypass leakage not detected")
		}
		sq, _ := rep.Unit(microsampler.SQADDR)
		if !sq.Leaky() || sq.AssocNoTiming.Leaky() {
			t.Errorf("SQ-ADDR should be timing-only leakage: %v / noT %v",
				sq.Assoc, sq.AssocNoTiming)
		}
		alu, _ := rep.Unit(microsampler.EUUALU)
		if !alu.AssocNoTiming.Leaky() {
			t.Errorf("EUU-ALU must survive timing removal: %v", alu.AssocNoTiming)
		}
		// The folded AND's PC is the single feature unique to bit 1.
		if got := len(alu.UniqueFeatures[1]); got != 1 {
			t.Errorf("class-1 unique ALU features = %d want 1 (%v)",
				got, alu.UniqueFeatures)
		}
		if got := len(alu.UniqueFeatures[0]); got != 0 {
			t.Errorf("class-0 unique ALU features = %d want 0", got)
		}
	})

	t.Run("CT-MEM-CMP leaks only through the ROB", func(t *testing.T) {
		rep := verify(t, "CT-MEM-CMP", microsampler.MegaBoom(), 6)
		leaks := leakySet(rep)
		if !leaks[microsampler.ROBPC] {
			t.Fatal("ROB-PC not flagged")
		}
		for u := range leaks {
			if u != microsampler.ROBPC && u != microsampler.ROBOCPNCY {
				t.Errorf("unexpected leaky unit %v", u)
			}
		}
	})
}

// TestFig6TimingSeparation asserts the Fig. 6 measurement outcome.
func TestFig6TimingSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	repA := verify(t, "ME-V1-MV-6A", microsampler.MegaBoom(), 4)
	repB := verify(t, "ME-V1-MV-6B", microsampler.MegaBoom(), 4)
	mA := microsampler.MeanCyclesByClass(repA.Iterations)
	mB := microsampler.MeanCyclesByClass(repB.Iterations)
	if d := mA[0] - mA[1]; d > 3 || d < -3 {
		t.Errorf("6a should overlap, got means %+v", mA)
	}
	if mB[0]-mB[1] < 5 {
		t.Errorf("6b should separate with bit-0 slower, got means %+v", mB)
	}
}

// TestOpenSSLSampleClean spot-checks representative Table V primitives
// (the full sweep runs in the Table V benchmark).
func TestOpenSSLSampleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, name := range []string{
		"constant_time_eq", "constant_time_select_64",
		"constant_time_lookup", "constant_time_cond_swap_buff",
		"constant_time_lt_bn",
	} {
		rep := verify(t, name, microsampler.MegaBoom(), 3)
		if rep.AnyLeak() {
			t.Errorf("%s flagged: %s", name, microsampler.RenderSummary(rep))
		}
	}
}

func TestWorkloadCatalogue(t *testing.T) {
	names := microsampler.WorkloadNames()
	if len(names) < 30 {
		t.Fatalf("catalogue has %d workloads", len(names))
	}
	if got := len(microsampler.OpenSSLPrimitiveNames()); got != 27 {
		t.Errorf("primitive list = %d want 27", got)
	}
	if _, err := microsampler.WorkloadByName("nope"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestPublicAssembleAndMachine(t *testing.T) {
	prog, err := microsampler.Assemble(`
_start:
	li a0, 0
	li a7, 93
	ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := microsampler.NewMachine(microsampler.SmallBoom())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(10000)
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("run: %v exit %d", err, res.ExitCode)
	}
}

func TestRenderingSmoke(t *testing.T) {
	rep := verify(t, "ME-NAIVE", microsampler.SmallBoom(), 2)
	for name, out := range map[string]string{
		"summary":     microsampler.RenderSummary(rep),
		"chart":       microsampler.RenderChart(rep),
		"timing":      microsampler.RenderTimingChart(rep),
		"histogram":   microsampler.RenderHistogram("x", rep.Iterations),
		"contingency": microsampler.RenderContingency(rep, microsampler.EUUMUL, 5),
		"features":    microsampler.RenderFeatures(rep, microsampler.EUUMUL),
		"stages":      microsampler.RenderStages(rep),
	} {
		if len(out) == 0 {
			t.Errorf("%s rendered empty", name)
		}
	}
	if !strings.Contains(microsampler.RenderChart(rep), "EUU-MUL") {
		t.Error("chart missing unit rows")
	}
}

func TestCompilerIntegration(t *testing.T) {
	const src = `
func ccopy(ctl, dst, dummy, src, len) {
	if (ctl) { memmove(dst, src, len); } else { memmove(dummy, src, len); }
	return 0;
}
func memmove(dst, src, len) {
	while (len) {
		store64(dst, load64(src));
		dst = dst + 8; src = src + 8; len = len - 8;
	}
	return 0;
}
`
	if testing.Short() {
		t.Skip("slow")
	}
	balanced, err := microsampler.CompileCT(src, microsampler.LowerBalanced)
	if err != nil {
		t.Fatal(err)
	}
	preload, err := microsampler.CompileCT(src, microsampler.LowerPreload)
	if err != nil {
		t.Fatal(err)
	}
	wB, err := microsampler.ModexpWithConditionalCopy("B", balanced)
	if err != nil {
		t.Fatal(err)
	}
	wP, err := microsampler.ModexpWithConditionalCopy("P", preload)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := microsampler.Verify(wB, microsampler.Options{Runs: 4, Warmup: 4})
	if err != nil {
		t.Fatal(err)
	}
	repP, err := microsampler.Verify(wP, microsampler.Options{Runs: 4, Warmup: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sq, _ := repB.Unit(microsampler.SQADDR); !sq.Leaky() {
		t.Error("balanced build should still leak store addresses")
	}
	if rob, _ := repB.Unit(microsampler.ROBPC); rob.Leaky() {
		t.Error("balanced build should not leak control flow")
	}
	if rob, _ := repP.Unit(microsampler.ROBPC); !rob.Leaky() {
		t.Error("preload build must leak control flow")
	}
	if len(repP.LeakyUnits()) <= len(repB.LeakyUnits()) {
		t.Errorf("preload (%d units) should leak more broadly than balanced (%d)",
			len(repP.LeakyUnits()), len(repB.LeakyUnits()))
	}
}

func TestFormalAPI(t *testing.T) {
	res, err := microsampler.FormalCheck(microsampler.FormalALU(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds() {
		t.Errorf("ALU design should hold: %+v", res.Violation)
	}
	if microsampler.FormalSCARV().StateBits() != 8*microsampler.FormalALU().StateBits() {
		t.Error("Table VII size ratio must be 8x")
	}
}

func TestConfigPresets(t *testing.T) {
	mega, small := microsampler.MegaBoom(), microsampler.SmallBoom()
	if mega.ROBEntries != 128 || small.ROBEntries != 32 {
		t.Error("Table III ROB sizes wrong")
	}
	if mega.FetchWidth != 8 || mega.DecodeWidth != 4 || mega.IssueWidth != 4 {
		t.Error("Table III MegaBoom widths wrong")
	}
	if small.FetchWidth != 4 || small.DecodeWidth != 1 || small.IssueWidth != 1 {
		t.Error("Table III SmallBoom widths wrong")
	}
	if mega.LDQEntries != 32 || small.LDQEntries != 8 {
		t.Error("Table III LSQ sizes wrong")
	}
	if mega.BranchPredEnts != 2048 || small.BranchPredEnts != 2048 {
		t.Error("Table III gshare sizes wrong")
	}
	if len(microsampler.AllUnits()) != 18 {
		t.Error("must track Table IV's 16 units plus TAGE-PRED and SPF-ADDR")
	}
}
