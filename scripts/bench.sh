#!/bin/sh
# Hot-path benchmark baseline: runs the trace-collector benchmarks plus
# the end-to-end sampling-throughput, zero-fault retry-overhead and
# matrix-sweep benchmarks and records the results as BENCH_trace.json
# in the repo root. Commit the refreshed artifact when the hot path changes so
# regressions show up in review diffs.
#
# Usage: scripts/bench.sh [count]   (benchmark repetitions, default 3)
set -eu

cd "$(dirname "$0")/.."

count="${1:-3}"
out="BENCH_trace.json"
raw="${TMPDIR:-/tmp}/microsampler-bench.txt"

echo "== go test -bench (count=$count) =="
go test -run '^$' -bench 'OnCycle' -benchmem -count "$count" \
    ./internal/trace | tee "$raw"
go test -run '^$' -bench 'SamplingThroughput|RetryOverhead' -benchmem -count "$count" \
    . | tee -a "$raw"
# Configuration-grid sweep throughput: a 2×4 matrix (8 cells) per
# iteration, reported as cells/s — the capacity number for sizing
# hardware-space sweeps.
go test -run '^$' -bench 'MatrixSweep' -benchtime 3x -count "$count" \
    . | tee -a "$raw"
# Content-addressed cache hit latency against the simulation it
# replaces; the speedup-x metric must stay >= 100 (the benchmark
# itself enforces the floor).
go test -run '^$' -bench 'CacheHit' -benchtime 100x -count "$count" \
    . | tee -a "$raw"
# End-to-end daemon job latency: HTTP submit through simulation,
# analysis, artifact rendering and the completion poll. Few iterations
# — each one is a whole verification.
go test -run '^$' -bench 'MSDJobLatency' -benchtime 5x -count 1 \
    ./internal/msd | tee -a "$raw"
# Cluster batch throughput: a coordinator sharding 32-point batches
# across 2 in-process workers, reported as points/s — the sizing number
# for distributed sweeps.
go test -run '^$' -bench 'ClusterThroughput' -benchtime 3x -count "$count" \
    ./internal/msd | tee -a "$raw"

# Fold the standard benchmark output into JSON: one object per
# benchmark name, each metric averaged over the repetitions. Plain awk,
# no dependencies.
awk -v go_version="$(go env GOVERSION)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++nnames] = name }
    runs[name]++
    for (i = 3; i + 1 <= NF; i += 2) {
        metric = name SUBSEP $(i + 1)
        sum[metric] += $i
        if (!(metric in mseen)) {
            mseen[metric] = 1
            morder[name, ++nmetrics[name]] = $(i + 1)
        }
    }
}
END {
    printf "{\n  \"go\": \"%s\",\n  \"count\": %d,\n  \"benchmarks\": [\n", \
        go_version, runs[order[1]]
    for (n = 1; n <= nnames; n++) {
        name = order[n]
        printf "    {\"name\": \"%s\"", name
        for (m = 1; m <= nmetrics[name]; m++) {
            unit = morder[name, m]
            avg = sum[name SUBSEP unit] / runs[name]
            printf ", \"%s\": %.6g", unit, avg
        }
        printf "}%s\n", n < nnames ? "," : ""
    }
    printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out:"
cat "$out"

# Append a timestamped, compacted copy to the benchmark history log.
# BENCH_trace.json is the latest snapshot (overwritten every run);
# BENCH_history.jsonl accumulates one line per run so hot-path drift is
# visible across commits, not just in the latest diff. Each line carries
# the commit SHA and whether the tree was dirty, so a record can be tied
# to (or disqualified from representing) an exact code state.
hist="BENCH_history.jsonl"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
dirty=false
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    dirty=true
fi
{
    printf '{"time": "%s", "commit": "%s", "dirty": %s, "result": ' "$stamp" "$rev" "$dirty"
    tr -d '\n' < "$out" | sed 's/   */ /g'
    printf '}\n'
} >> "$hist"
echo "appended to $hist (commit $rev, dirty=$dirty)"
