#!/bin/sh
# Bench-regression check: compares the fresh BENCH_trace.json snapshot
# against the previous BENCH_history.jsonl entry and warns when a
# throughput metric regresses beyond tolerance. Advisory, never fatal —
# benchmark noise on shared CI runners must not block merges — but the
# warnings render as GitHub annotations when run under Actions.
#
# Watched metrics (higher-is-better ones invert the comparison):
#   ns/op, ns/cycle   lower is better
#   rows/s, cells/s   higher is better
#
# Usage: scripts/benchdiff.sh [tolerance-percent]   (default 10)
set -eu

cd "$(dirname "$0")/.."

tol="${1:-10}"
cur="BENCH_trace.json"
hist="BENCH_history.jsonl"

if [ ! -s "$cur" ]; then
    echo "benchdiff: no $cur (run scripts/bench.sh first)" >&2
    exit 0
fi
if [ ! -s "$hist" ]; then
    echo "benchdiff: no $hist to compare against; nothing to do"
    exit 0
fi

# The baseline is the last *committed* history entry when inside a git
# checkout — a fresh bench.sh run appends its own record to the
# working-tree log before this check runs, and a snapshot must not be
# compared against itself. Outside git, fall back to the last line.
# Either way its "result" object has the same shape as BENCH_trace.json,
# so one parser serves both.
base="$(git show HEAD:"$hist" 2>/dev/null | tail -n 1 || true)"
if [ -z "$base" ]; then
    base="$(tail -n 1 "$hist")"
fi

# Flatten one benchmarks array into "name metric value" triples. Plain
# awk, no dependencies: relies on bench.sh's stable one-object-per-line
# emission, with the history line compacted to a single line.
flatten() {
    tr '}' '\n' < /dev/stdin | awk '
    /"name":/ {
        line = $0
        sub(/^.*"name": *"/, "", line)
        name = line
        sub(/".*$/, "", name)
        sub(/^[^,]*,/, "", line)
        n = split(line, parts, ",")
        for (i = 1; i <= n; i++) {
            kv = parts[i]
            gsub(/[" ]/, "", kv)
            if (split(kv, f, ":") == 2 && f[2] != "")
                print name, f[1], f[2]
        }
    }'
}

curflat="${TMPDIR:-/tmp}/microsampler-benchdiff-cur.txt"
baseflat="${TMPDIR:-/tmp}/microsampler-benchdiff-base.txt"
flatten < "$cur" > "$curflat"
printf '%s\n' "$base" | flatten > "$baseflat"

warned=0
while read -r name metric value; do
    case "$metric" in
    ns/op|ns/cycle) higher_better=0 ;;
    rows/s|cells/s) higher_better=1 ;;
    *) continue ;;
    esac
    baseval="$(awk -v n="$name" -v m="$metric" '$1 == n && $2 == m { print $3; exit }' "$baseflat")"
    [ -n "$baseval" ] || continue
    verdict="$(awk -v cur="$value" -v base="$baseval" -v tol="$tol" -v hb="$higher_better" '
    BEGIN {
        if (base + 0 == 0) { print "ok"; exit }
        if (hb) delta = (base - cur) / base * 100
        else    delta = (cur - base) / base * 100
        if (delta > tol) printf "regressed %.1f%%", delta
        else print "ok"
    }')"
    if [ "$verdict" != "ok" ]; then
        warned=1
        msg="bench regression: $name $metric $verdict (was $baseval, now $value, tolerance ${tol}%)"
        if [ -n "${GITHUB_ACTIONS:-}" ]; then
            echo "::warning title=Benchmark regression::$msg"
        fi
        echo "WARN: $msg" >&2
    fi
done < "$curflat"

if [ "$warned" = 0 ]; then
    echo "benchdiff: no regressions beyond ${tol}% vs last history entry"
else
    echo "benchdiff: regressions above are advisory (noise-prone); investigate before committing the refreshed baseline" >&2
fi
exit 0
