#!/bin/sh
# Tier-1 verification: build, formatting, vet, full test suite, and a
# race-detector pass over the packages with concurrent hot paths.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (telemetry, core) =="
go test -race ./internal/telemetry ./internal/core

echo "verify: OK"
