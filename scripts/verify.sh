#!/bin/sh
# Tier-1 verification: build, formatting, vet, full test suite, and a
# race-detector pass over the packages with concurrent hot paths.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (telemetry, export, core, msd, cache, faults, sim, report, history, cluster) =="
go test -race ./internal/telemetry ./internal/telemetry/export \
    ./internal/core ./internal/msd ./internal/cache ./internal/faults \
    ./internal/sim ./internal/report ./internal/history ./internal/cluster

echo "== matrix sweep smoke (2x2 grid through the CLI) =="
matrixdir="${TMPDIR:-/tmp}/microsampler-matrix-smoke"
mkdir -p "$matrixdir"
go run ./cmd/microsampler -workload TAGE-HIST \
    -matrix 'prefetch=none,stride;predictor=gshare,tage' \
    -runs 2 -warmup 2 -matrix-parallel -1 \
    -matrix-out "$matrixdir/matrix.json" -matrix-html "$matrixdir/matrix.html"
test -s "$matrixdir/matrix.json"
test -s "$matrixdir/matrix.html"

echo "== diff regression gate smoke (history store + verdict flips) =="
diffdir="${TMPDIR:-/tmp}/microsampler-diff-smoke"
rm -rf "$diffdir"
mkdir -p "$diffdir"
# Baseline sweep, recorded into the history store under label "base".
go run ./cmd/microsampler -workload TAGE-HIST \
    -matrix 'predictor=gshare,tage' -runs 4 -warmup 4 -matrix-parallel -1 \
    -cache-dir "$diffdir/cache" -history-dir "$diffdir/history" -label base \
    -matrix-out "$diffdir/base.json"
# Unchanged re-sweep: replayed from the cache, self-diffs to zero flips
# and exits zero — no false alarms on identical code states.
go run ./cmd/microsampler -workload TAGE-HIST \
    -matrix 'predictor=gshare,tage' -runs 4 -warmup 4 -matrix-parallel -1 \
    -cache-dir "$diffdir/cache" -history-dir "$diffdir/history" -label current \
    -diff-against base -diff-out "$diffdir/diff.json"
grep -q '"regressions": 0' "$diffdir/diff.json"
# Inject a verdict flip by rewriting the baseline artifact all-clean;
# the gate must now exit nonzero and highlight the flip in the HTML.
sed 's/"leaky": true/"leaky": false/g' "$diffdir/base.json" > "$diffdir/all-clean.json"
if go run ./cmd/microsampler -workload TAGE-HIST \
    -matrix 'predictor=gshare,tage' -runs 4 -warmup 4 -matrix-parallel -1 \
    -cache-dir "$diffdir/cache" \
    -diff-baseline "$diffdir/all-clean.json" \
    -diff-out "$diffdir/regress.json" -diff-html "$diffdir/regress.html"; then
    echo "diff gate did not flag the injected verdict flip" >&2
    exit 1
fi
grep -q 'VERDICT FLIP' "$diffdir/regress.html"

echo "== msd daemon smoke (full HTTP lifecycle) =="
go test -race -count=1 -run '^TestSmoke$' ./cmd/msd

echo "== msd kill/recover smoke (SIGKILL + journal recovery) =="
go test -race -count=1 -run '^TestKillRecover$' ./cmd/msd

echo "== cluster smoke (3 processes, SIGKILL a worker mid-batch, baseline verdict diff) =="
go test -race -count=1 -run '^TestClusterSmoke$' ./cmd/msd

echo "== second-signal force-exit smoke =="
go test -race -count=1 -run '^TestSecondSignalForcesExit$' ./cmd/msd

echo "== cluster chaos determinism (seeded worker kills/hangs vs single-node verdicts) =="
go test -race -count=1 -run '^TestChaosClusterMatchesSingleNode$' ./internal/cluster

echo "== msd cache-hit + audit smoke =="
go test -race -count=1 \
    -run '^TestCacheHitServesJob$|^TestCacheDiskLayerSurvivesRestart$|^TestAuditLogVerifiesClean$|^TestAuditLogDetectsTampering$' \
    ./internal/msd
go test -race -count=1 -run '^TestAuditVerifyFlag$' ./cmd/msd

echo "== CLI cache replay smoke (byte-identical -json) =="
cachedir="${TMPDIR:-/tmp}/microsampler-cache-smoke"
rm -rf "$cachedir"
mkdir -p "$cachedir"
go run ./cmd/microsampler -workload ME-NAIVE -runs 2 -warmup 2 \
    -config small -json -cache-dir "$cachedir/store" > "$cachedir/first.json"
go run ./cmd/microsampler -workload ME-NAIVE -runs 2 -warmup 2 \
    -config small -json -cache-dir "$cachedir/store" > "$cachedir/second.json"
cmp "$cachedir/first.json" "$cachedir/second.json"

echo "== oracle determinism (go test -count=2) =="
go test -count=2 ./internal/oracle

echo "== fuzz smoke (5s per target) =="
go test -run='^$' -fuzz='^FuzzAssemble$' -fuzztime=5s ./internal/asm
go test -run='^$' -fuzz='^FuzzSipHashChunks$' -fuzztime=5s ./internal/siphash
go test -run='^$' -fuzz='^FuzzHashMatrix$' -fuzztime=5s ./internal/snapshot
go test -run='^$' -fuzz='^FuzzPipeline$' -fuzztime=5s ./internal/oracle
go test -run='^$' -fuzz='^FuzzMatrixConfig$' -fuzztime=5s ./internal/core
go test -run='^$' -fuzz='^FuzzCacheKey$' -fuzztime=5s ./internal/msd

echo "== bench smoke (hot-path collector) =="
go test -run '^$' -bench 'OnCycle' -benchtime 100x -benchmem ./internal/trace

echo "== detection-quality gate (mstest) =="
go run ./cmd/mstest run -seeds 5 -quiet -out "${TMPDIR:-/tmp}/microsampler-quality.json"

echo "verify: OK"
